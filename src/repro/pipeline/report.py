"""Aggregated results of a pipeline run (and their JSON wire format).

The pipeline streams one :class:`EcRecord` per destination equivalence
class back to the coordinator; the :class:`PipelineReport` merges them into
the run-level view used by the CLI, the scaling benchmark and CI artifacts.
Records carry the *canonical* partition (sorted groups of concrete node
names) so that two runs can be compared for bit-identical output
independently of worker scheduling, abstract node naming or process hash
seeds.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.config.transfer import VIRTUAL_DESTINATION
from repro.reporting import ReportEnvelope, StreamingReport, register_report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.abstraction.bonsai import CompressionResult

#: Format version for the JSON reports uploaded as CI artifacts.
REPORT_VERSION = 1


@dataclass
class EcRecord:
    """The outcome of compressing one destination equivalence class."""

    prefix: str
    origins: List[str]
    concrete_nodes: int
    concrete_edges: int
    abstract_nodes: int
    abstract_edges: int
    iterations: int
    compression_seconds: float
    #: Canonical partition: each group is the sorted list of its concrete
    #: members' names, groups sorted by their first member.
    groups: List[List[str]]
    #: Local-preference case splitting: ``[[base_size, num_copies], ...]``.
    split_cases: List[List[int]] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: "CompressionResult") -> "EcRecord":
        abstraction = result.refinement.abstraction
        groups = sorted(
            sorted(str(node) for node in group)
            for group in abstraction.groups()
            if group != frozenset({VIRTUAL_DESTINATION})
        )
        concrete_nodes = result.concrete_srp.graph.num_nodes()
        concrete_edges = result.concrete_srp.graph.num_undirected_edges()
        if VIRTUAL_DESTINATION in result.concrete_srp.graph.nodes:
            concrete_nodes -= 1
            concrete_edges -= len(result.equivalence_class.origins)
        split_cases = sorted(
            [len(abstraction.concrete_nodes(base)), len(copies)]
            for base, copies in abstraction.split_groups.items()
        )
        return cls(
            prefix=str(result.equivalence_class.prefix),
            origins=sorted(str(o) for o in result.equivalence_class.origins),
            concrete_nodes=concrete_nodes,
            concrete_edges=concrete_edges,
            abstract_nodes=result.abstract_nodes,
            abstract_edges=result.abstract_edges,
            iterations=result.refinement.iterations,
            compression_seconds=result.compression_seconds,
            groups=groups,
            split_cases=split_cases,
        )

    def canonical(self) -> Tuple:
        """Everything except timings, for serial/parallel parity checks."""
        return (
            self.prefix,
            tuple(self.origins),
            self.concrete_nodes,
            self.concrete_edges,
            self.abstract_nodes,
            self.abstract_edges,
            tuple(tuple(group) for group in self.groups),
            tuple(tuple(case) for case in self.split_cases),
        )

    @property
    def node_ratio(self) -> float:
        return self.concrete_nodes / max(1, self.abstract_nodes)

    @property
    def edge_ratio(self) -> float:
        return self.concrete_edges / max(1, self.abstract_edges)


@register_report
@dataclass
class PipelineReport(StreamingReport, ReportEnvelope):
    """Run-level aggregation of every per-class record.

    Records arrive either all at once (``records=[...]``) or
    incrementally through the :class:`~repro.reporting.StreamingReport`
    path (``merge_partial`` plus an optional disk spill); aggregates read
    through :meth:`iter_records` so both paths produce identical output.
    """

    kind = "compression"

    network_name: str
    executor: str
    workers: int
    batch_size: int
    num_batches: int
    num_classes: int
    encode_seconds: float
    total_seconds: float
    records: List[EcRecord] = field(default_factory=list)
    #: Optional wall-clock of a serial reference run of the same workload
    #: (filled in by the scaling benchmark to compute the speedup).
    serial_seconds: Optional[float] = None
    #: Peak resident set of the producing run in MiB, when measured
    #: (``--memory-budget`` runs and the scale benchmark fill this).
    peak_rss_mb: Optional[float] = None
    version: int = REPORT_VERSION

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def mean_abstract_nodes(self) -> float:
        count = self.record_count()
        if not count:
            return 0.0
        return sum(r.abstract_nodes for r in self.iter_records()) / count

    @property
    def mean_abstract_edges(self) -> float:
        count = self.record_count()
        if not count:
            return 0.0
        return sum(r.abstract_edges for r in self.iter_records()) / count

    @property
    def mean_node_ratio(self) -> float:
        count = self.record_count()
        if not count:
            return 0.0
        return sum(r.node_ratio for r in self.iter_records()) / count

    @property
    def total_compression_seconds(self) -> float:
        """CPU seconds spent compressing, summed over all classes."""
        return sum(r.compression_seconds for r in self.iter_records())

    @property
    def speedup(self) -> Optional[float]:
        """Wall-clock speedup over the serial reference run, if recorded."""
        if self.serial_seconds is None or self.total_seconds <= 0:
            return None
        return self.serial_seconds / self.total_seconds

    def canonical_records(self) -> Tuple[Tuple, ...]:
        """The canonical per-class outcomes, in prefix order."""
        return tuple(
            record.canonical()
            for record in sorted(self.iter_records(), key=lambda r: r.prefix)
        )

    def ok(self) -> bool:
        """The report-level gate: every enumerated class was compressed."""
        return self.record_count() == self.num_classes

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    @classmethod
    def record_from_payload(cls, payload: Dict) -> EcRecord:
        return EcRecord(**payload)

    def to_dict(self, include_records: bool = True) -> Dict:
        data = asdict(self)
        data.pop("records", None)
        if include_records:
            data["records"] = self.records_payload()
        data.update(self.envelope_dict())
        data["aggregate"] = {
            "mean_abstract_nodes": self.mean_abstract_nodes,
            "mean_abstract_edges": self.mean_abstract_edges,
            "mean_node_ratio": self.mean_node_ratio,
            "total_compression_seconds": self.total_compression_seconds,
            "speedup": self.speedup,
        }
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "PipelineReport":
        payload = cls.strip_envelope(data)
        payload.pop("aggregate", None)
        records = [
            cls.record_from_payload(record) for record in payload.pop("records", [])
        ]
        return cls(records=records, **payload)

    @classmethod
    def from_json(cls, text: str) -> "PipelineReport":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        lines = [
            f"network: {self.network_name}",
            f"executor: {self.executor} (workers={self.workers}, "
            f"batch_size={self.batch_size}, batches={self.num_batches})",
            f"equivalence classes: {self.num_classes}",
            f"one-time encoding: {self.encode_seconds:.3f}s",
            f"wall clock: {self.total_seconds:.3f}s "
            f"(per-class CPU total {self.total_compression_seconds:.3f}s)",
            f"mean abstract size: {self.mean_abstract_nodes:.1f} nodes / "
            f"{self.mean_abstract_edges:.1f} edges "
            f"(mean node ratio {self.mean_node_ratio:.2f}x)",
        ]
        if self.speedup is not None:
            lines.append(
                f"speedup vs serial: {self.speedup:.2f}x "
                f"(serial {self.serial_seconds:.3f}s)"
            )
        return lines
