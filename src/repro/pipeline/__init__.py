"""Parallel control-plane compression pipeline.

Destination equivalence classes never interact (§5.1), so compressing a
network is embarrassingly parallel once the one-time policy-BDD encoding
exists.  This package provides the batching/fan-out/aggregation machinery:

* :class:`EncodedNetwork` -- the pickleable one-time encoding artifact;
* :class:`CompressionPipeline` -- batches classes over a process pool,
  thread pool, or serial fallback;
* :class:`PipelineReport` / :class:`EcRecord` -- aggregated, JSON-ready
  results;
* ``python -m repro.pipeline`` -- a CLI over the generated topology
  families.
"""

from repro.pipeline.core import (
    EXECUTORS,
    CompressionPipeline,
    PipelineError,
    PipelineRun,
)
from repro.pipeline.encoded import EncodedNetwork
from repro.pipeline.report import EcRecord, PipelineReport

__all__ = [
    "EXECUTORS",
    "CompressionPipeline",
    "EncodedNetwork",
    "EcRecord",
    "PipelineError",
    "PipelineReport",
    "PipelineRun",
]
