"""Parallel per-class pipeline over destination equivalence classes.

Destination equivalence classes never interact (§5.1), so any per-class
job -- compression, batch property verification -- is embarrassingly
parallel once the one-time policy-BDD encoding exists.  This package
provides the batching/fan-out/aggregation machinery:

* :class:`EncodedNetwork` -- the pickleable one-time encoding artifact;
* :class:`ClassFanOut` -- the generic engine running any registered
  per-class task over a process pool, thread pool, or serial fallback;
* :class:`CompressionPipeline` -- the ``"compress"`` task plus report
  aggregation on top of :class:`ClassFanOut`;
* :class:`PipelineReport` / :class:`EcRecord` -- aggregated, JSON-ready
  results;
* ``python -m repro.pipeline`` -- a CLI over the generated topology
  families (compression by default, batch verification with ``--verify``).
"""

from repro.pipeline.core import (
    CLASS_TASKS,
    EXECUTORS,
    ClassFanOut,
    CompressionPipeline,
    PipelineError,
    PipelineRun,
    register_class_task,
)
from repro.pipeline.encoded import EncodedNetwork
from repro.pipeline.report import EcRecord, PipelineReport

__all__ = [
    "CLASS_TASKS",
    "EXECUTORS",
    "ClassFanOut",
    "CompressionPipeline",
    "EncodedNetwork",
    "EcRecord",
    "PipelineError",
    "PipelineReport",
    "PipelineRun",
    "register_class_task",
]
