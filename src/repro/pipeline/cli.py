"""Command-line front end: ``python -m repro.pipeline``.

Examples
--------
Compress a k=4 fat-tree over two worker processes and print the summary::

    python -m repro.pipeline --topo fattree --size 4 --workers 2

Write the full JSON report (the format CI uploads as an artifact)::

    python -m repro.pipeline --topo mesh --size 12 --executor serial \
        --output report.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.netgen.families import TOPOLOGY_FAMILIES, build_topology
from repro.pipeline.core import EXECUTORS, CompressionPipeline, PipelineError


def build_parser() -> argparse.ArgumentParser:
    families = ", ".join(
        f"{name} ({hint})" for name, (_, hint) in sorted(TOPOLOGY_FAMILIES.items())
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Compress every destination equivalence class of a "
        "generated network in parallel and report aggregate statistics.",
    )
    parser.add_argument(
        "--topo",
        required=True,
        choices=sorted(TOPOLOGY_FAMILIES),
        help=f"topology family; size parameter per family: {families}",
    )
    parser.add_argument("--size", type=int, required=True, help="family size parameter")
    parser.add_argument(
        "--workers", type=int, default=4, help="worker count for parallel executors"
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help="how to run the per-class work (default: process)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, help="classes per work unit"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="compress only the first N classes"
    )
    parser.add_argument(
        "--build-networks",
        action="store_true",
        help="also emit the abstract configured network for every class",
    )
    parser.add_argument(
        "--syntactic",
        action="store_true",
        help="use syntactic policy keys instead of BDDs (ablation mode)",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this file"
    )
    parser.add_argument(
        "--per-class", action="store_true", help="also print one line per class"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        network = build_topology(args.topo, args.size)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        pipeline = CompressionPipeline(
            network,
            executor=args.executor,
            workers=args.workers,
            batch_size=args.batch_size,
            limit=args.limit,
            build_networks=args.build_networks,
            use_bdds=not args.syntactic,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        run = pipeline.run()
    except PipelineError as exc:
        print(f"pipeline failed: {exc}", file=sys.stderr)
        return 1

    report = run.report
    print(f"== compression pipeline: {args.topo}({args.size}) ==")
    for line in report.summary_lines():
        print(f"  {line}")
    if args.per_class:
        for record in report.records:
            print(
                f"  {record.prefix}: {record.concrete_nodes} -> "
                f"{record.abstract_nodes} nodes "
                f"({record.node_ratio:.2f}x) in {record.compression_seconds:.4f}s"
            )
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write report to {args.output}: {exc}", file=sys.stderr)
            return 1
        print(f"  report written to {args.output}")
    return 0
