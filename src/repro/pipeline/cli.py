"""Command-line front end: ``python -m repro.pipeline``.

The CLI is organised as subcommands, one per pillar::

    python -m repro.pipeline compress --topo fattree --size 4 --workers 2
    python -m repro.pipeline verify   --family fattree
    python -m repro.pipeline failures --family wan --k 2 --sample 50
    python -m repro.pipeline delta    --family fattree --changes changes.json
    python -m repro.pipeline store    save --topo ring --size 5 --store ./artifacts
    python -m repro.pipeline serve    --topo fattree --store ./artifacts --port 8642

``store`` persists warm baseline artifacts (encoded network, per-class
labelings, transfer memos, signatures, partitions, compressions) keyed by
the network's content fingerprint; ``delta --baseline PATH`` then
validates a change script against a stored baseline with **zero**
baseline re-solves, and ``serve`` answers verify / delta / failure /
k-resilience queries over HTTP off the same warm artifact.

Examples
--------
Compress a k=4 fat-tree over two worker processes and print the summary::

    python -m repro.pipeline compress --topo fattree --size 4 --workers 2

Verify selected properties on every generated family and save the
combined JSON report (exit status 1 if any verdict diverges)::

    python -m repro.pipeline verify --family all \
        --properties reachability,routing-loop-freedom --output verify.json

Sweep every single-link failure of a fat-tree, re-solving incrementally
(scratch-oracle cross-checked) and flagging per-scenario abstraction
soundness::

    python -m repro.pipeline failures --family fattree --k 1 \
        --output failure_report.json

Validate a what-if change script against a *stored* baseline -- no
baseline re-solve, stored compressions reused for revalidation::

    python -m repro.pipeline store save --topo fattree --store ./artifacts
    python -m repro.pipeline delta --family fattree \
        --changes changes.json --baseline ./artifacts

Legacy spellings
----------------
The original flat-flag spellings (``--verify``, ``--failures``,
``--delta``, ``--report-out``) still work and behave identically, but
emit a :class:`DeprecationWarning` pointing at the subcommand::

    python -m repro.pipeline --verify --family fattree   # use: verify
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path
from typing import List, Optional

from repro.analysis.batch import BatchVerifier, PropertySuite, VerificationReport
from repro.analysis.properties import registered_properties
from repro.analysis.verifier import VerificationTimeout
from repro.netgen.families import (
    TOPOLOGY_FAMILIES,
    build_topology,
    default_failure_sample,
    default_size,
)
from repro.obs import trace
from repro.pipeline.core import (
    EXECUTORS,
    SCHEDULERS,
    CompressionPipeline,
    PipelineError,
)

#: The subcommand names; an argv starting with one routes to the
#: subcommand parser, anything else through the legacy flat-flag shim.
SUBCOMMANDS = (
    "compress", "verify", "failures", "delta", "store", "serve", "trace",
    "profile", "bench",
)

#: Legacy spelling -> replacement hint, for the one-per-invocation
#: deprecation warnings the shim emits.
_LEGACY_SPELLINGS = {
    "--verify": "the 'verify' subcommand",
    "--failures": "the 'failures' subcommand",
    "--delta": "the 'delta' subcommand",
    "--report-out": "--output",
}


# ----------------------------------------------------------------------
# Legacy flat-flag parser (the shim target; exact messages are pinned)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The legacy flat-flag parser (``--verify`` / ``--failures`` / ...).

    Kept verbatim so existing scripts and CI invocations keep their exact
    error messages and exit codes; new invocations should prefer the
    subcommands from :func:`build_subcommand_parser`.
    """
    families = ", ".join(
        f"{name} ({hint})" for name, (_, hint) in sorted(TOPOLOGY_FAMILIES.items())
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Compress every destination equivalence class of a "
        "generated network in parallel and report aggregate statistics; "
        "with --verify, differentially check the property catalogue on the "
        "concrete and compressed networks instead.  (Legacy spelling: "
        "prefer the subcommands compress, verify, failures, delta, store "
        "and serve.)",
    )
    parser.add_argument(
        "--topo",
        choices=sorted(TOPOLOGY_FAMILIES),
        help=f"topology family; size parameter per family: {families}",
    )
    parser.add_argument(
        "--family",
        choices=sorted(TOPOLOGY_FAMILIES) + ["all"],
        help="alias for --topo; 'all' runs every family at its default size",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=None,
        help="family size parameter (defaults to a small per-family size)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="worker count for parallel executors"
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help="how to run the per-class work (default: process)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, help="classes per work unit"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="process only the first N classes"
    )
    parser.add_argument(
        "--build-networks",
        action="store_true",
        help="also emit the abstract configured network for every class",
    )
    parser.add_argument(
        "--syntactic",
        action="store_true",
        help="use syntactic policy keys instead of BDDs (ablation mode)",
    )
    parser.add_argument(
        "--output",
        "--report-out",
        dest="output",
        default=None,
        help="write the JSON report to this file (a single report object; "
        "with --family all, a {family: report} map).  Every mode "
        "(compress, --verify, --failures, --delta) follows this one "
        "convention.",
    )
    parser.add_argument(
        "--per-class", action="store_true", help="also print one line per class"
    )

    verify = parser.add_argument_group("batch verification (--verify)")
    verify.add_argument(
        "--verify",
        action="store_true",
        help="differentially verify the property catalogue on the concrete "
        "and compressed networks instead of just compressing",
    )
    verify.add_argument(
        "--properties",
        default=None,
        help="comma-separated registered property names "
        f"(default: all of {', '.join(registered_properties())})",
    )
    verify.add_argument(
        "--path-bound",
        type=int,
        default=None,
        help="hop bound for bounded-path-length (default: concrete node count)",
    )
    verify.add_argument(
        "--waypoints",
        default=None,
        help="comma-separated device names for waypointing "
        "(default: each class's originating devices)",
    )
    verify.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="total wall-clock budget in seconds, shared across families; "
        "classes beyond it are reported as timed out and the exit status is 1",
    )

    failures = parser.add_argument_group("failure sweeps (--failures)")
    failures.add_argument(
        "--failures",
        action="store_true",
        help="sweep failure scenarios over every equivalence class: "
        "incremental re-solve (scratch-oracle checked), per-property "
        "verdict deltas vs. the failure-free baseline, and per-scenario "
        "abstraction-soundness flags",
    )
    failures.add_argument(
        "--k",
        type=int,
        default=None,
        help="enumerate all scenarios of at most k simultaneous failures "
        "(default 1: every single-link failure)",
    )
    failures.add_argument(
        "--sample",
        type=int,
        default=None,
        help="deterministically sample this many scenarios instead of "
        "enumerating (default: per-family cap for k>=2, exhaustive for k=1)",
    )
    failures.add_argument(
        "--seed", type=int, default=None, help="seed for --sample (default 0)"
    )
    failures.add_argument(
        "--fail-nodes",
        action="store_true",
        help="also enumerate node failures (default: links only)",
    )
    failures.add_argument(
        "--no-oracle",
        action="store_true",
        help="skip the scratch-solve oracle cross-check (faster, ungated)",
    )
    failures.add_argument(
        "--no-soundness",
        action="store_true",
        help="skip the per-scenario abstraction-soundness checker",
    )

    delta = parser.add_argument_group("change-impact sweeps (--delta)")
    delta.add_argument(
        "--delta",
        action="store_true",
        help="validate a configuration change script: incremental "
        "re-verify of every change step (scratch-oracle checked), "
        "per-property verdict deltas vs the unchanged baseline, and "
        "per-class abstraction revalidation (reuse vs re-compress)",
    )
    delta.add_argument(
        "--changes",
        default=None,
        metavar="FILE|generated",
        help="JSON change script (a list of change sets, a single change "
        "set, or {\"script\": [...]}), or the literal 'generated' for the "
        "deterministic per-family change scenarios (the default)",
    )
    delta.add_argument(
        "--steps",
        type=int,
        default=None,
        help="cap the generated change script at this many steps "
        "(default: per-family)",
    )
    delta.add_argument(
        "--baseline",
        default=None,
        metavar="STORE|ENTRY",
        help="validate against a stored baseline artifact (an artifact "
        "store root, or one entry directory): zero baseline re-solves, "
        "stored compressions reused for revalidation",
    )
    delta.add_argument(
        "--no-revalidate",
        action="store_true",
        help="skip the per-step abstraction revalidator",
    )
    delta.add_argument(
        "--no-rebuild-oracle",
        action="store_true",
        help="skip timing the full-rebuild arm when the abstraction is "
        "reused (faster; the reported speedup loses its denominator)",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand parser
# ----------------------------------------------------------------------
def _topology_arguments(parser: argparse.ArgumentParser) -> None:
    families = ", ".join(
        f"{name} ({hint})" for name, (_, hint) in sorted(TOPOLOGY_FAMILIES.items())
    )
    parser.add_argument(
        "--topo",
        choices=sorted(TOPOLOGY_FAMILIES),
        help=f"topology family; size parameter per family: {families}",
    )
    parser.add_argument(
        "--family",
        choices=sorted(TOPOLOGY_FAMILIES) + ["all"],
        help="alias for --topo; 'all' runs every family at its default size",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=None,
        help="family size parameter (defaults to a small per-family size)",
    )


def _execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=4, help="worker count for parallel executors"
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help="how to run the per-class work (default: process)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, help="classes per work unit"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="process only the first N classes"
    )
    parser.add_argument(
        "--syntactic",
        action="store_true",
        help="use syntactic policy keys instead of BDDs (ablation mode)",
    )
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULERS,
        default="stealing",
        help="process-executor scheduling: cost-aware work stealing "
        "(default) or the original static pre-batching",
    )
    parser.add_argument(
        "--cost-store",
        default=None,
        metavar="DIR",
        help="artifact store root whose costs.json sidecars persist "
        "observed per-class wall-clock between runs (warms the stealing "
        "scheduler's dispatch order)",
    )
    parser.add_argument(
        "--memory-budget",
        type=float,
        default=None,
        metavar="MIB",
        help="bound aggregation memory: stream per-class records to a "
        "disk spill and fail (exit 1) if peak RSS exceeds this many MiB",
    )
    _trace_argument(parser)


def _trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured trace of the run (spans across all "
        "executors, parent-linked, with per-span metric deltas) as "
        "schema-versioned JSONL; inspect with 'trace summarize PATH'",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="sample the run with the span-scoped profiler and write the "
        "profile as schema-versioned JSONL; render a flamegraph with "
        "'profile flamegraph PATH'",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write the structured event stream (sweep/class/steal/split/"
        "spill/fallback/store events) as schema-versioned JSONL",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress meter on stderr (ETA from the cost "
        "model's per-class estimates)",
    )


def _output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON report to this file (a single report object; "
        "with --family all, a {family: report} map)",
    )
    parser.add_argument(
        "--per-class", action="store_true", help="also print one line per class"
    )


def _suite_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--properties",
        default=None,
        help="comma-separated registered property names "
        f"(default: all of {', '.join(registered_properties())})",
    )
    parser.add_argument(
        "--path-bound",
        type=int,
        default=None,
        help="hop bound for bounded-path-length (default: concrete node count)",
    )
    parser.add_argument(
        "--waypoints",
        default=None,
        help="comma-separated device names for waypointing "
        "(default: each class's originating devices)",
    )


def build_subcommand_parser() -> argparse.ArgumentParser:
    """The subcommand CLI: compress / verify / failures / delta / store / serve."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Bonsai control-plane compression toolkit: compress, "
        "differentially verify, sweep failures, validate change scripts, "
        "persist warm baseline artifacts and serve them over HTTP.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compress = commands.add_parser(
        "compress",
        help="compress every destination class and report aggregate statistics",
    )
    _topology_arguments(compress)
    _execution_arguments(compress)
    _output_arguments(compress)
    compress.add_argument(
        "--build-networks",
        action="store_true",
        help="also emit the abstract configured network for every class",
    )

    verify = commands.add_parser(
        "verify",
        help="differentially verify the property catalogue on the concrete "
        "and compressed networks",
    )
    _topology_arguments(verify)
    _execution_arguments(verify)
    _output_arguments(verify)
    _suite_arguments(verify)
    verify.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="total wall-clock budget in seconds, shared across families",
    )

    failures = commands.add_parser(
        "failures",
        help="sweep k-failure scenarios with incremental re-solve and "
        "abstraction-soundness checks",
    )
    _topology_arguments(failures)
    _execution_arguments(failures)
    _output_arguments(failures)
    _suite_arguments(failures)
    failures.add_argument(
        "--k", type=int, default=None,
        help="enumerate all scenarios of at most k simultaneous failures",
    )
    failures.add_argument(
        "--sample", type=int, default=None,
        help="deterministically sample this many scenarios",
    )
    failures.add_argument(
        "--seed", type=int, default=None, help="seed for --sample (default 0)"
    )
    failures.add_argument(
        "--fail-nodes", action="store_true",
        help="also enumerate node failures (default: links only)",
    )
    failures.add_argument(
        "--no-oracle", action="store_true",
        help="skip the scratch-solve oracle cross-check",
    )
    failures.add_argument(
        "--no-soundness", action="store_true",
        help="skip the per-scenario abstraction-soundness checker",
    )

    delta = commands.add_parser(
        "delta",
        help="validate a configuration change script (optionally against a "
        "stored baseline artifact: zero baseline re-solves)",
    )
    _topology_arguments(delta)
    _execution_arguments(delta)
    _output_arguments(delta)
    _suite_arguments(delta)
    delta.add_argument(
        "--changes", default=None, metavar="FILE|generated",
        help="JSON change script, or 'generated' (the default)",
    )
    delta.add_argument(
        "--steps", type=int, default=None,
        help="cap the generated change script at this many steps",
    )
    delta.add_argument(
        "--seed", type=int, default=None,
        help="seed for the generated change script (default 0)",
    )
    delta.add_argument(
        "--baseline", default=None, metavar="STORE|ENTRY",
        help="validate against a stored baseline artifact (an artifact "
        "store root, or one entry directory): zero baseline re-solves, "
        "stored compressions reused for revalidation",
    )
    delta.add_argument(
        "--no-oracle", action="store_true",
        help="skip the scratch-solve oracle cross-check",
    )
    delta.add_argument(
        "--no-revalidate", action="store_true",
        help="skip the per-step abstraction revalidator",
    )
    delta.add_argument(
        "--no-rebuild-oracle", action="store_true",
        help="skip timing the full-rebuild arm on abstraction reuse",
    )

    store = commands.add_parser(
        "store",
        help="manage the on-disk warm-baseline artifact store",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    store_save = store_commands.add_parser(
        "save",
        help="build the full warm baseline (encode + solve + compress every "
        "class) and persist it keyed by the network's content fingerprint",
    )
    _topology_arguments(store_save)
    store_save.add_argument(
        "--store", required=True, help="artifact store root directory"
    )
    store_save.add_argument(
        "--limit", type=int, default=None,
        help="only bake the first N classes (smoke runs)",
    )
    store_save.add_argument(
        "--no-compress", action="store_true",
        help="skip per-class compressions (delta then recompresses lazily)",
    )
    store_save.add_argument(
        "--syntactic", action="store_true",
        help="use syntactic policy keys instead of BDDs",
    )
    store_save.add_argument(
        "--executor", choices=EXECUTORS, default="serial",
        help="how to parallelise the per-class bake (default: serial)",
    )
    store_save.add_argument(
        "--workers", type=int, default=4,
        help="worker count for thread/process bakes",
    )
    _trace_argument(store_save)

    store_list = store_commands.add_parser(
        "list", help="list every entry's provenance metadata"
    )
    store_list.add_argument(
        "--store", required=True, help="artifact store root directory"
    )

    store_info = store_commands.add_parser(
        "info",
        help="show one entry's metadata and verify it loads (checksum, "
        "schema and fingerprint checks)",
    )
    _topology_arguments(store_info)
    store_info.add_argument(
        "--store", required=True, help="artifact store root directory"
    )
    store_info.add_argument(
        "--fingerprint", default=None,
        help="entry fingerprint (default: computed from --topo/--family)",
    )

    serve = commands.add_parser(
        "serve",
        help="answer verify / delta / failure / k-resilience queries over "
        "HTTP off a warm baseline artifact",
    )
    _topology_arguments(serve)
    serve.add_argument(
        "--store", default=None,
        help="artifact store root: load a matching warm baseline when one "
        "verifies, save fresh builds back",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--syntactic", action="store_true",
        help="use syntactic policy keys instead of BDDs",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="reject queries with 503 + Retry-After once N are in flight "
        "(default: unbounded)",
    )
    _trace_argument(serve)

    trace_cmd = commands.add_parser(
        "trace",
        help="inspect structured trace files written by --trace",
    )
    trace_commands = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_commands.add_parser(
        "summarize",
        help="print a trace file's span tree and self-time hotspots",
    )
    trace_summarize.add_argument("path", help="trace JSONL file (from --trace)")
    trace_summarize.add_argument(
        "--top", type=int, default=10, help="hotspot rows to show (default 10)"
    )
    trace_summarize.add_argument(
        "--max-depth", type=int, default=4,
        help="span tree depth to render (default 4)",
    )

    profile_cmd = commands.add_parser(
        "profile",
        help="inspect sampling-profiler files written by --profile",
    )
    profile_commands = profile_cmd.add_subparsers(dest="profile_command", required=True)
    profile_flame = profile_commands.add_parser(
        "flamegraph",
        help="render a profile as collapsed-stack 'folded' lines "
        "(flamegraph.pl / speedscope / inferno input)",
    )
    profile_flame.add_argument("path", help="profile JSONL file (from --profile)")
    profile_flame.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the folded lines here instead of stdout",
    )
    profile_summarize = profile_commands.add_parser(
        "summarize", help="print a profile's hottest leaf frames"
    )
    profile_summarize.add_argument("path", help="profile JSONL file (from --profile)")
    profile_summarize.add_argument(
        "--top", type=int, default=10, help="frames to show (default 10)"
    )

    bench = commands.add_parser(
        "bench",
        help="inspect the append-only benchmark history",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_history = bench_commands.add_parser(
        "history",
        help="print per-stage trend lines from BENCH_HISTORY.jsonl and "
        "check the latest run against a rolling median",
    )
    bench_history.add_argument(
        "--history", default=None, metavar="PATH",
        help="history file (default: $REPRO_OBS_HISTORY or ./BENCH_HISTORY.jsonl)",
    )
    bench_history.add_argument(
        "--bench", default=None,
        help="only this benchmark (default: all recorded benchmarks)",
    )
    bench_history.add_argument(
        "--check", action="store_true",
        help="exit 1 when any stage's latest run regresses past the "
        "rolling median bound",
    )
    bench_history.add_argument(
        "--window", type=int, default=5,
        help="rolling-median window: preceding runs per stage (default 5)",
    )
    bench_history.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fraction over the rolling median (default 0.25)",
    )
    bench_history.add_argument(
        "--absolute-slack", type=float, default=None, metavar="SECONDS",
        help="absolute slack added to every bound (default 0.02s)",
    )

    return parser


def _selected_families(args) -> Optional[List[str]]:
    """The families to run, or None on a usage error (message printed)."""
    if args.topo and args.family:
        print("error: pass either --topo or --family, not both", file=sys.stderr)
        return None
    family = args.family or args.topo
    if family is None:
        print("error: a topology family is required (--topo or --family)", file=sys.stderr)
        return None
    if family == "all":
        if args.size is not None:
            print("error: --size cannot be combined with --family all", file=sys.stderr)
            return None
        return sorted(TOPOLOGY_FAMILIES)
    return [family]


def _build_suite(args) -> PropertySuite:
    waypoints = (
        None
        if args.waypoints is None
        else tuple(name.strip() for name in args.waypoints.split(",") if name.strip())
    )
    params = {"path_bound": args.path_bound, "waypoints": waypoints}
    if args.properties is None:
        return PropertySuite.default(**params)
    names = [name.strip() for name in args.properties.split(",") if name.strip()]
    return PropertySuite.from_names(names, **params)


def _write_output(path: str, text: str) -> bool:
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
    except OSError as exc:
        print(f"error: cannot write report to {path}: {exc}", file=sys.stderr)
        return False
    print(f"  report written to {path}")
    return True


def _emit_reports(args, reports) -> bool:
    """The one ``--output`` convention shared by every mode.

    A single report is written as itself, several as a ``{family:
    report}`` map; any report object with ``to_json``/``to_dict`` fits.
    Returns False when the file cannot be written (the caller turns that
    into exit status 1).
    """
    if not args.output:
        return True
    if len(reports) == 1:
        report = next(iter(reports.values()))
        if getattr(report, "spill", None) is not None:
            # Spilled reports stream to disk record by record -- the
            # whole point of the memory budget is never materialising
            # every record at once, serialisation included.
            try:
                report.write_json(args.output)
            except OSError as exc:
                print(
                    f"error: cannot write report to {args.output}: {exc}",
                    file=sys.stderr,
                )
                return False
            print(f"  report written to {args.output}")
            return True
        text = report.to_json()
    else:
        text = json.dumps(
            {family: report.to_dict() for family, report in reports.items()},
            indent=2,
            sort_keys=True,
        )
    return _write_output(args.output, text)


def _report_status(failed: bool, emitted: bool) -> int:
    """The one exit-code convention: 1 on any gate failure or write error."""
    return 1 if (failed or not emitted) else 0


def _sweep_scale_kwargs(args) -> dict:
    """The shard-scheduler knobs shared by every sweep subcommand.

    ``getattr`` defaults keep the pinned legacy flag parser (which never
    grew these options) working unchanged.
    """
    memory_budget = getattr(args, "memory_budget", None)
    return dict(
        scheduler=getattr(args, "scheduler", "stealing"),
        cost_store=getattr(args, "cost_store", None),
        spill=memory_budget is not None,
    )


def _check_memory_budget(args, report) -> bool:
    """Record peak RSS on the report; False when it exceeds the budget."""
    memory_budget = getattr(args, "memory_budget", None)
    if memory_budget is None:
        return True
    from repro.perfutil import peak_rss_mb

    observed = peak_rss_mb()
    report.peak_rss_mb = observed
    within = observed <= memory_budget
    print(
        f"  peak RSS: {observed:.1f} MiB "
        f"({'within' if within else 'EXCEEDS'} budget {memory_budget:.1f} MiB)"
    )
    return within


def _run_verify(args, families: List[str]) -> int:
    try:
        suite = _build_suite(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    reports = {}
    diverged = False
    timed_out = False
    # One shared wall-clock budget across every family: each verifier gets
    # whatever remains, so "--family all --timeout 60" means 60 seconds
    # total, not 60 per family.
    deadline = None if args.timeout is None else time.monotonic() + args.timeout
    for family in families:
        size = args.size if args.size is not None else default_size(family)
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        if remaining is not None and remaining <= 0:
            # Budget already spent: skip the expensive network build and
            # policy-BDD encoding entirely and report the family as timed
            # out rather than paying per-family setup costs the flag was
            # meant to bound.
            report = VerificationReport(
                network_name=f"{family}-{size}",
                executor=args.executor,
                workers=args.workers,
                num_classes=0,
                properties=list(suite.names),
                path_bound=suite.path_bound,
                encode_seconds=0.0,
                total_seconds=0.0,
                timed_out=True,
            )
        else:
            network = build_topology(family, size)
            verifier = BatchVerifier(
                network,
                suite=suite,
                executor=args.executor,
                workers=args.workers,
                batch_size=args.batch_size,
                limit=args.limit,
                timeout_seconds=remaining,
                use_bdds=not args.syntactic,
                scheduler=getattr(args, "scheduler", "stealing"),
                cost_store=getattr(args, "cost_store", None),
            )
            try:
                with trace.span("family", family=family, size=str(size)):
                    report = verifier.run(raise_on_timeout=False)
            except PipelineError as exc:
                print(f"verification failed: {exc}", file=sys.stderr)
                return 1
        reports[family] = report
        diverged = diverged or not report.verdicts_agree()
        timed_out = timed_out or report.timed_out
        print(f"== batch verification: {family}({size}) ==")
        for line in report.summary_lines():
            print(f"  {line}")
        if args.per_class:
            for record in report.records:
                status = "TIMED OUT" if record.timed_out else (
                    "ok" if record.agrees() else "DIVERGED"
                )
                print(
                    f"  {record.prefix}: {status} "
                    f"(concrete {record.concrete_seconds:.4f}s, "
                    f"abstract {record.abstract_seconds:.4f}s)"
                )

    return _report_status(diverged or timed_out, _emit_reports(args, reports))


def _run_failures(args, families: List[str]) -> int:
    from repro.failures import FailureSweep

    try:
        suite = _build_suite(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    k = args.k if args.k is not None else 1
    reports = {}
    failed = False
    for family in families:
        size = args.size if args.size is not None else default_size(family)
        network = build_topology(family, size)
        sample = (
            args.sample
            if args.sample is not None
            else default_failure_sample(family, k)
        )
        try:
            sweep = FailureSweep(
                network,
                k=k,
                sample=sample,
                seed=args.seed if args.seed is not None else 0,
                include_nodes=args.fail_nodes,
                suite=suite,
                oracle=not args.no_oracle,
                soundness=not args.no_soundness,
                executor=args.executor,
                workers=args.workers,
                batch_size=args.batch_size,
                limit=args.limit,
                use_bdds=not args.syntactic,
                **_sweep_scale_kwargs(args),
            )
            with trace.span("family", family=family, size=str(size)):
                report = sweep.run()
        except PipelineError as exc:
            print(f"failure sweep failed: {exc}", file=sys.stderr)
            return 1
        reports[family] = report
        failed = failed or not report.ok()
        print(f"== failure sweep: {family}({size}) ==")
        for line in report.summary_lines():
            print(f"  {line}")
        if not _check_memory_budget(args, report):
            failed = True
        if args.per_class:
            for record in report.iter_records():
                broken = sum(
                    1 for outcome in record.scenarios if outcome.newly_failing
                )
                print(
                    f"  {record.prefix}: {broken}/{len(record.scenarios)} "
                    f"scenarios change a verdict"
                )

    return _report_status(failed, _emit_reports(args, reports))


def _load_baseline_artifact(path: str, network):
    """Resolve ``--baseline`` to a verified :class:`BaselineArtifact`.

    ``path`` may be one store entry directory (it contains ``meta.json``)
    or a store root (the entry is found by the network's fingerprint).
    Raises :class:`~repro.store.StoreError` on any verification failure:
    the CLI refuses rather than silently re-solving.
    """
    from repro.store import ArtifactStore

    candidate = Path(path)
    if (candidate / "meta.json").is_file():
        return ArtifactStore(candidate.parent).load(candidate.name)
    return ArtifactStore(candidate).load_for(network)


def _run_delta(args, families: List[str]) -> int:
    from repro.delta import ChangeError, DeltaSweep, load_change_script
    from repro.netgen.changes import default_change_steps, generated_change_script
    from repro.store import StoreError

    try:
        suite = _build_suite(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    file_script = None
    if args.changes is not None and args.changes != "generated":
        misused = [
            flag
            for flag, value in (("--steps", args.steps), ("--seed", args.seed))
            if value is not None
        ]
        if misused:
            print(
                f"error: {', '.join(misused)} only apply(ies) to generated "
                "change scripts, not --changes FILE",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.changes, "r", encoding="utf-8") as handle:
                file_script = load_change_script(handle.read())
        except (OSError, ValueError) as exc:
            print(f"error: cannot load change script {args.changes}: {exc}", file=sys.stderr)
            return 2

    baseline_path = getattr(args, "baseline", None)
    reports = {}
    failed = False
    for family in families:
        size = args.size if args.size is not None else default_size(family)
        network = build_topology(family, size)
        baseline = None
        if baseline_path:
            try:
                baseline = _load_baseline_artifact(baseline_path, network)
            except StoreError as exc:
                print(
                    f"error: cannot use baseline artifact at {baseline_path}: {exc}",
                    file=sys.stderr,
                )
                return 1
        if file_script is not None:
            script = file_script
        else:
            steps = (
                args.steps if args.steps is not None else default_change_steps(family)
            )
            script = generated_change_script(
                network, family, steps=steps, seed=args.seed if args.seed is not None else 0
            )
        try:
            sweep = DeltaSweep(
                network,
                script=script,
                suite=suite,
                baseline=baseline,
                oracle=not args.no_oracle,
                revalidate=not args.no_revalidate,
                rebuild_oracle=not args.no_rebuild_oracle,
                executor=args.executor,
                workers=args.workers,
                batch_size=args.batch_size,
                limit=args.limit,
                use_bdds=not args.syntactic,
                **_sweep_scale_kwargs(args),
            )
            with trace.span("family", family=family, size=str(size)):
                report = sweep.run()
        except ChangeError as exc:
            print(f"invalid change script for {family}({size}): {exc}", file=sys.stderr)
            return 2
        except PipelineError as exc:
            print(f"change sweep failed: {exc}", file=sys.stderr)
            return 1
        reports[family] = report
        failed = failed or not report.ok()
        print(f"== change-impact sweep: {family}({size}) ==")
        if baseline is not None:
            warm = sum(
                1 for record in report.iter_records() if record.baseline_from_store
            )
            print(
                f"  warm baseline {baseline.fingerprint[:12]}...: "
                f"{warm}/{report.record_count()} classes seeded from the store"
            )
        for line in report.summary_lines():
            print(f"  {line}")
        if not _check_memory_budget(args, report):
            failed = True
        if args.per_class:
            for record in report.iter_records():
                broken = sum(1 for outcome in record.steps if outcome.newly_failing)
                reused = sum(1 for outcome in record.steps if outcome.reused)
                print(
                    f"  {record.prefix}: {broken}/{len(record.steps)} steps "
                    f"change a verdict, {reused} reused the abstraction"
                )

    return _report_status(failed, _emit_reports(args, reports))


def _run_compress(args, family: str) -> int:
    size = args.size if args.size is not None else default_size(family)
    network = build_topology(family, size)
    memory_budget = getattr(args, "memory_budget", None)
    try:
        pipeline = CompressionPipeline(
            network,
            executor=args.executor,
            workers=args.workers,
            batch_size=args.batch_size,
            limit=args.limit,
            build_networks=args.build_networks,
            use_bdds=not args.syntactic,
            scheduler=getattr(args, "scheduler", "stealing"),
            cost_store=getattr(args, "cost_store", None),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with trace.span("family", family=family, size=str(size)):
            if memory_budget is not None:
                # Streaming mode: per-class records spill to disk as they
                # arrive, so peak RSS stays bounded on fat topologies.
                report = pipeline.run_streaming(spill=True)
            else:
                report = pipeline.run().report
    except PipelineError as exc:
        print(f"pipeline failed: {exc}", file=sys.stderr)
        return 1

    print(f"== compression pipeline: {family}({size}) ==")
    for line in report.summary_lines():
        print(f"  {line}")
    within = _check_memory_budget(args, report)
    if args.per_class:
        for record in report.iter_records():
            print(
                f"  {record.prefix}: {record.concrete_nodes} -> "
                f"{record.abstract_nodes} nodes "
                f"({record.node_ratio:.2f}x) in {record.compression_seconds:.4f}s"
            )
    if not _emit_reports(args, {family: report}):
        return 1
    return 0 if within else 1


def _run_store(args) -> int:
    from repro.store import ArtifactStore, BaselineArtifact, StoreError
    from repro.store.fingerprint import network_fingerprint

    store = ArtifactStore(args.store)

    if args.store_command == "list":
        entries = store.list()
        if not entries:
            print(f"(no artifacts under {store.root})")
            return 0
        for meta in entries:
            fingerprint = str(meta.get("fingerprint", "?"))
            if meta.get("unreadable"):
                print(f"  {fingerprint[:12]}...  (unreadable meta)")
                continue
            print(
                f"  {fingerprint[:12]}...  {meta.get('network_name', '?')}  "
                f"classes={meta.get('num_classes', '?')}  "
                f"{meta.get('payload_bytes', '?')} bytes  "
                f"saved {meta.get('saved_at', '?')}"
            )
        return 0

    if args.store_command == "save":
        families = _selected_families(args)
        if families is None:
            return 2
        for family in families:
            size = args.size if args.size is not None else default_size(family)
            network = build_topology(family, size)
            artifact = BaselineArtifact.build(
                network,
                use_bdds=not args.syntactic,
                compress=not args.no_compress,
                limit=args.limit,
                executor=args.executor,
                workers=args.workers,
                cost_store=store,
            )
            entry = store.save(artifact)
            print(
                f"saved {family}({size}): fingerprint "
                f"{artifact.fingerprint[:12]}... "
                f"({len(artifact.baselines)} classes, "
                f"{artifact.build_seconds:.2f}s build) -> {entry}"
            )
        return 0

    # store info
    fingerprint = args.fingerprint
    if fingerprint is None:
        families = _selected_families(args)
        if families is None:
            return 2
        if len(families) != 1:
            print(
                "error: store info needs one family (or --fingerprint)",
                file=sys.stderr,
            )
            return 2
        size = args.size if args.size is not None else default_size(families[0])
        fingerprint = network_fingerprint(build_topology(families[0], size))
    meta = store.meta(fingerprint)
    if meta is None:
        print(
            f"error: no readable entry for {fingerprint[:12]}... under {store.root}",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(meta, indent=2, sort_keys=True))
    from repro.store.store import refusal_counts

    try:
        artifact = store.load(fingerprint)
    except StoreError as exc:
        print(f"entry REFUSED: {exc}", file=sys.stderr)
        refusals = refusal_counts()
        if refusals:
            print(
                "refusals this process: "
                + ", ".join(f"{reason}={count}" for reason, count in refusals.items()),
                file=sys.stderr,
            )
        return 1
    stats = artifact.stats()
    print(
        f"entry verifies: {stats['num_classes']} classes, "
        f"{stats['compressed_classes']} compressed"
    )
    refusals = refusal_counts()
    if refusals:
        print(
            "refusals this process: "
            + ", ".join(f"{reason}={count}" for reason, count in refusals.items())
        )
    costs = store.load_costs(fingerprint)
    for task_path, block in sorted(costs.get("tasks", {}).items()):
        print(
            f"observed costs [{task_path}]: {block.get('num_units', 0)} units, "
            f"{block.get('total_seconds', 0.0):.3f}s total, "
            f"recorded {block.get('recorded_at', '?')}"
        )
    return 0


def _run_serve(args) -> int:
    from repro.serve import serve as serve_forever, warm_service

    families = _selected_families(args)
    if families is None:
        return 2
    if len(families) != 1:
        print("error: serve needs exactly one topology family", file=sys.stderr)
        return 2
    family = families[0]
    size = args.size if args.size is not None else default_size(family)
    network = build_topology(family, size)
    service = warm_service(
        network,
        store=args.store,
        use_bdds=not args.syntactic,
        max_inflight=getattr(args, "max_inflight", None),
    )
    if args.store and service.session.rebuilt:
        reason = service.session.rebuild_reason or "no stored entry"
        print(f"rebuilt baseline into {args.store}: {reason}")
    serve_forever(service, host=args.host, port=args.port)
    return 0


def _run_trace(args) -> int:
    # trace summarize: the only trace subcommand so far.
    try:
        header, root = trace.read_jsonl(args.path)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.path}: {exc}", file=sys.stderr)
        return 1
    command = header.get("command", "?")
    print(f"trace: {args.path} (command: {command}, schema v{header.get('schema_version')})")
    info = trace.summary(root, top=args.top)
    print(f"  {info['span_count']} spans, {info['total_ms']:.1f}ms total")
    print("span tree:")
    for line in trace.tree_lines(root, max_depth=args.max_depth):
        print(f"  {line}")
    print(f"hotspots (top {args.top} by self time):")
    for row in info["hotspots"]:
        cpu = (
            f", cpu {row['cpu_ms']:.1f}ms" if row.get("cpu_ms") else ""
        )
        print(
            f"  {row['name']}: {row['self_ms']:.1f}ms self / "
            f"{row['total_ms']:.1f}ms total over {row['count']} span(s){cpu}"
        )
    return 0


def _run_profile(args) -> int:
    from repro.obs import profile as _profile
    from repro.obs.jsonl import ObsFileError

    try:
        header, records = _profile.read_jsonl(args.path)
    except (OSError, ObsFileError) as exc:
        print(f"error: cannot read profile {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.profile_command == "flamegraph":
        lines = _profile.folded_lines(records)
        if args.out:
            if not _write_output(args.out, "\n".join(lines)):
                return 1
        else:
            for line in lines:
                print(line)
        return 0
    # profile summarize
    print(
        f"profile: {args.path} ({header.get('sample_count', 0)} samples @ "
        f"{header.get('interval_ms', '?')}ms, schema v{header.get('schema_version')})"
    )
    print(f"hottest leaf frames (top {args.top} by samples):")
    for row in _profile.summary(records, top=args.top):
        print(f"  {row['frame']}: {row['samples']} samples")
    return 0


def _run_bench(args) -> int:
    # bench history: trend lines + rolling-median regression check.
    from repro.obs import history as _history
    from repro.obs.jsonl import ObsFileError

    path = _history.default_history_path(args.history)
    try:
        records = _history.read_history(path)
    except OSError as exc:
        print(f"error: cannot read bench history {path}: {exc}", file=sys.stderr)
        return 2
    except ObsFileError as exc:
        print(f"error: bench history refused: {exc}", file=sys.stderr)
        return 2
    if args.bench:
        records = [r for r in records if r["bench"] == args.bench]
        if not records:
            print(f"error: no runs of {args.bench!r} in {path}", file=sys.stderr)
            return 2
    print(f"bench history: {path} ({len(records)} runs)")
    for line in _history.trend_lines(records, bench=args.bench):
        print(f"  {line}")
    slack = (
        args.absolute_slack
        if args.absolute_slack is not None
        else _history.ABSOLUTE_SLACK_SECONDS
    )
    ok, findings = _history.regression_check(
        records,
        window=args.window,
        max_regression=args.max_regression,
        absolute_slack=slack,
    )
    regressed = [f for f in findings if f["regressed"]]
    print(
        f"rolling-median check (window {args.window}, "
        f"+{args.max_regression * 100:.0f}% +{slack}s): "
        f"{len(findings)} stages checked, {len(regressed)} regressed"
    )
    for finding in regressed:
        print(
            f"  REGRESSED {finding['bench']}/{finding['stage']}: "
            f"latest {finding['latest']:.4f}s vs median {finding['median']:.4f}s "
            f"(bound {finding['bound']:.4f}s over {finding['window']} runs)",
            file=sys.stderr,
        )
    if args.check and not ok:
        return 1
    return 0


def _dispatch_subcommand(args) -> int:
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "store":
        return _run_store(args)
    if args.command == "serve":
        return _run_serve(args)
    families = _selected_families(args)
    if families is None:
        return 2
    if args.command == "verify":
        return _run_verify(args, families)
    if args.command == "failures":
        return _run_failures(args, families)
    if args.command == "delta":
        return _run_delta(args, families)
    # compress: run each selected family in turn (legacy restricted this
    # to a single family; the subcommand just loops).
    status = 0
    for family in families:
        status = max(status, _run_compress(args, family))
    return status


# ----------------------------------------------------------------------
# Legacy shim
# ----------------------------------------------------------------------
def _warn_legacy_spellings(argv: List[str]) -> None:
    """One :class:`DeprecationWarning` per legacy spelling per invocation."""
    seen = set()
    for token in argv:
        flag = token.split("=", 1)[0]
        if flag in _LEGACY_SPELLINGS and flag not in seen:
            seen.add(flag)
            warnings.warn(
                f"{flag} is deprecated; use {_LEGACY_SPELLINGS[flag]} "
                "(python -m repro.pipeline <subcommand> ...)",
                DeprecationWarning,
                stacklevel=3,
            )


def _legacy_main(argv: List[str]) -> int:
    _warn_legacy_spellings(argv)
    args = build_parser().parse_args(argv)
    families = _selected_families(args)
    if families is None:
        return 2
    try:
        modes = [
            flag
            for flag, on in (
                ("--verify", args.verify),
                ("--failures", args.failures),
                ("--delta", args.delta),
            )
            if on
        ]
        if len(modes) > 1:
            print(
                f"error: pass at most one of {', '.join(modes)}", file=sys.stderr
            )
            return 2
        mode = modes[0] if modes else None
        # Every mode-specific flag names the modes it is valid in; a flag
        # given outside them is an error in *any* mode (not just the
        # compress default), so "--failures --changes x.json" cannot run
        # a failure sweep while silently dropping the change script.
        flag_modes = (
            ("--properties", args.properties, ("--verify", "--failures", "--delta")),
            ("--path-bound", args.path_bound, ("--verify", "--failures", "--delta")),
            ("--waypoints", args.waypoints, ("--verify", "--failures", "--delta")),
            ("--timeout", args.timeout, ("--verify",)),
            ("--k", args.k, ("--failures",)),
            ("--sample", args.sample, ("--failures",)),
            ("--fail-nodes", args.fail_nodes or None, ("--failures",)),
            ("--no-soundness", args.no_soundness or None, ("--failures",)),
            ("--seed", args.seed, ("--failures", "--delta")),
            ("--no-oracle", args.no_oracle or None, ("--failures", "--delta")),
            ("--changes", args.changes, ("--delta",)),
            ("--steps", args.steps, ("--delta",)),
            ("--baseline", args.baseline, ("--delta",)),
            ("--no-revalidate", args.no_revalidate or None, ("--delta",)),
            ("--no-rebuild-oracle", args.no_rebuild_oracle or None, ("--delta",)),
        )
        for flag, value, allowed in flag_modes:
            if value is not None and mode not in allowed:
                print(
                    f"error: {flag} requires "
                    + " or ".join(allowed)
                    + (f" (got {mode})" if mode else ""),
                    file=sys.stderr,
                )
                return 2
        if args.verify:
            return _run_verify(args, families)
        if args.failures:
            return _run_failures(args, families)
        if args.delta:
            return _run_delta(args, families)
        if len(families) > 1:
            print(
                "error: --family all requires --verify, --failures or --delta",
                file=sys.stderr,
            )
            return 2
        return _run_compress(args, families[0])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except VerificationTimeout as exc:  # pragma: no cover - defensive
        print(f"verification timed out: {exc}", file=sys.stderr)
        return 1


def _begin_obs(args) -> dict:
    """Start the requested observability instruments for one invocation.

    ``--trace`` and ``--profile`` both need span collection (the profiler
    attributes samples to the active span), so either begins a trace;
    the trace file is only written back for ``--trace``.  With none of
    the flags set nothing is constructed -- the disabled path stays the
    null-instrument fast path the ``obs_overhead`` gate measures.
    """
    import os

    if os.environ.get("REPRO_OBS_DISABLE_METRICS"):
        from repro.obs import metrics as _metrics

        _metrics.disable()
    state = {
        "trace_path": getattr(args, "trace", None),
        "profile_path": getattr(args, "profile", None),
        "profiler": None,
        "writer": None,
        "meter": None,
        "command": args.command,
    }
    if state["trace_path"] or state["profile_path"]:
        trace.begin("run", command=args.command)
    if state["profile_path"]:
        from repro.obs.profile import SamplingProfiler

        state["profiler"] = SamplingProfiler().start()
    events_path = getattr(args, "events", None)
    if events_path:
        from repro.obs.events import EventWriter

        state["writer"] = EventWriter(events_path, context={"command": args.command})
    if getattr(args, "progress", False):
        from repro.obs.events import ProgressMeter

        state["meter"] = ProgressMeter()
    return state


def _finish_obs(state: dict) -> None:
    """Stop instruments and write their files (profiler first, so sampled
    CPU self-time lands in the trace written after it)."""
    profiler = state["profiler"]
    if profiler is not None:
        profiler.stop()
    if state["meter"] is not None:
        state["meter"].close()
    if state["writer"] is not None:
        state["writer"].close()
        print(f"  events written to {state['writer'].path}")
    root = None
    if state["trace_path"] or state["profile_path"]:
        root = trace.end()
    if state["trace_path"] and root is not None:
        try:
            trace.write_jsonl(
                state["trace_path"], root, context={"command": state["command"]}
            )
        except OSError as exc:
            print(
                f"error: cannot write trace to {state['trace_path']}: {exc}",
                file=sys.stderr,
            )
        else:
            print(f"  trace written to {state['trace_path']}")
    if state["profile_path"] and profiler is not None:
        from repro.obs import profile as _profile

        try:
            _profile.write_jsonl(
                state["profile_path"], profiler, context={"command": state["command"]}
            )
        except OSError as exc:
            print(
                f"error: cannot write profile to {state['profile_path']}: {exc}",
                file=sys.stderr,
            )
        else:
            print(
                f"  profile written to {state['profile_path']} "
                f"({profiler.sample_count} samples)"
            )


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] in SUBCOMMANDS:
            args = build_subcommand_parser().parse_args(argv)
            obs_state = _begin_obs(args)
            try:
                return _dispatch_subcommand(args)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            except VerificationTimeout as exc:  # pragma: no cover - defensive
                print(f"verification timed out: {exc}", file=sys.stderr)
                return 1
            finally:
                _finish_obs(obs_state)
        return _legacy_main(argv)
    except SystemExit as exc:  # argparse --help / usage errors
        code = exc.code
        return code if isinstance(code, int) else 2
