"""The parallel per-class pipeline (§5.1's "classes are independent").

Destination equivalence classes never interact, so any per-class job --
compression, property verification, ... -- can be fanned out over a pool
of workers once the one-time :class:`~repro.pipeline.encoded.EncodedNetwork`
artifact is in hand.  :class:`ClassFanOut` is that generic engine: it
splits the classes into batches, dispatches a *registered task* to a pool,
and streams the per-class results back in class order.  Three executors
are supported:

* ``"process"`` -- a :class:`~concurrent.futures.ProcessPoolExecutor`; the
  one-time artifact is pickled once and handed to each worker process via
  the pool initializer, so every process owns a private, fully hash-consed
  :class:`~repro.bdd.manager.BddManager`;
* ``"thread"`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`; each
  worker *thread* still receives its own unpickled copy of the artifact
  (the BDD manager is not thread-safe, and private copies keep the output
  bit-identical to the serial run).  Useful when processes are unavailable
  and the per-class work releases the GIL rarely;
* ``"serial"`` -- everything runs inline on the caller's objects, in class
  order, with no pickling.  This is the deterministic fallback and the
  baseline the scaling benchmark compares against.

Tasks are module-level callables ``task(bonsai, equivalence_class,
options) -> result`` addressed by a ``"module:function"`` path, so worker
processes can resolve them by import regardless of which modules the
coordinator happened to load.  :data:`CLASS_TASKS` maps short names
(``"compress"``, ``"verify"``) to those paths.

:class:`CompressionPipeline` -- the PR 1 subsystem -- is the ``"compress"``
task plus report aggregation on top of the generic engine; the batch
property-verification engine (:class:`repro.analysis.batch.BatchVerifier`)
rides the same executors with the ``"verify"`` task.
"""

from __future__ import annotations

import importlib
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.abstraction.bonsai import Bonsai, CompressionResult
from repro.abstraction.ec import EquivalenceClass
from repro.config.network import Network
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace
from repro.pipeline.encoded import EncodedNetwork
from repro.pipeline.report import EcRecord, PipelineReport

#: The executors understood by :class:`ClassFanOut`.
EXECUTORS = ("serial", "thread", "process")

#: The process-executor schedulers: ``"stealing"`` routes through the
#: cost-aware :class:`~repro.pipeline.shard.ShardCoordinator`; ``"static"``
#: keeps the original contiguous pre-batching.
SCHEDULERS = ("stealing", "static")


class PipelineError(RuntimeError):
    """A worker failed while running a per-class task."""


# ----------------------------------------------------------------------
# Task registry
# ----------------------------------------------------------------------
#: Short task name -> ``"module:function"`` path of a per-class callable
#: ``task(bonsai, equivalence_class, options) -> result``.  The *path* is
#: what gets shipped to workers, so fresh processes resolve the callable
#: by import without needing the registering module pre-loaded.
CLASS_TASKS: Dict[str, str] = {
    "compress": "repro.pipeline.core:compress_class_task",
}


def register_class_task(name: str, path: str) -> None:
    """Register (or replace) a named per-class task by dotted path."""
    if ":" not in path:
        raise ValueError(f"task path must look like 'module:function', got {path!r}")
    CLASS_TASKS[name] = path


def resolve_class_task(name_or_path: str) -> str:
    """Normalise a task reference to its ``"module:function"`` path."""
    if not isinstance(name_or_path, str) or not name_or_path.strip():
        raise ValueError(
            "task name must be a non-empty string (a registered name or a "
            "'module:function' path)"
        )
    if name_or_path in CLASS_TASKS:
        return CLASS_TASKS[name_or_path]
    if ":" in name_or_path:
        return name_or_path
    known = ", ".join(sorted(CLASS_TASKS))
    raise ValueError(f"unknown task {name_or_path!r}; registered: {known}")


def _import_task(path: str) -> Callable[[Bonsai, EquivalenceClass, dict], object]:
    module_name, _, attr = path.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise PipelineError(f"task {path!r} does not exist") from None


def compress_class_task(
    bonsai: Bonsai, equivalence_class: EquivalenceClass, options: dict
) -> CompressionResult:
    """The ``"compress"`` task: Bonsai compression of one class."""
    with trace.span("compress", cls=str(equivalence_class.prefix)):
        return bonsai.compress(
            equivalence_class, build_network=bool(options.get("build_networks", False))
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker state: each process's main thread (process pools) or each
#: worker thread (thread pools) gets its own Bonsai over its own copy of
#: the encoded artifact.
_worker_state = threading.local()


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle a private copy of the one-time artifact."""
    artifact = EncodedNetwork.from_bytes(payload)
    _worker_state.bonsai = artifact.make_bonsai()


def _run_batch(
    task_path: str,
    batch: Sequence[Tuple[int, EquivalenceClass]],
    options: dict,
    capture_trace: bool = False,
    ship_metrics: bool = False,
) -> List[Tuple[int, object, float, Optional[dict]]]:
    """Run one batch of ``(index, class)`` pairs through a task in a worker.

    Each entry comes back as ``(index, result, seconds, obs)`` -- the
    observed per-class wall-clock feeds the cost model scheduling the
    next sweep, and ``obs`` (present only when the coordinator asked for
    it) carries the unit's captured span subtree and/or the worker-local
    counter delta back across the pool boundary.  ``capture_trace`` is
    the coordinator's ``trace.active()`` at submit time (worker processes
    never saw ``trace.begin()`` themselves); ``ship_metrics`` is set only
    for process pools -- thread workers already increment the shared
    registry, and shipping the delta too would double count.  Failures
    are returned as ``(index, _WorkerFailure, seconds, obs)`` markers
    rather than raised, so one bad class produces a clean
    coordinator-side error naming the class instead of a bare pickled
    traceback from the pool.
    """
    bonsai: Bonsai = _worker_state.bonsai
    task = _import_task(task_path)
    out: List[Tuple[int, object, float, Optional[dict]]] = []
    for index, equivalence_class in batch:
        start = time.perf_counter()
        with trace.capture_unit(
            capture_trace, ship_metrics, cls=str(equivalence_class.prefix)
        ) as obs:
            try:
                result = task(bonsai, equivalence_class, options)
            except Exception as exc:  # noqa: BLE001 - reported to the coordinator
                result = _WorkerFailure(
                    prefix=str(equivalence_class.prefix),
                    error=repr(exc),
                    traceback=traceback.format_exc(),
                )
        blob = obs if (capture_trace or ship_metrics) else None
        out.append((index, result, time.perf_counter() - start, blob))
    return out


@dataclass
class _WorkerFailure:
    """A pickleable stand-in for an exception raised inside a worker."""

    prefix: str
    error: str
    traceback: str


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class ClassFanOut:
    """Fan a registered per-class task out over the equivalence classes.

    Parameters
    ----------
    network:
        The configured network (ignored when ``artifact`` is given).
    artifact:
        A pre-built :class:`EncodedNetwork`; building one up front lets
        several runs (e.g. serial and parallel benchmark arms) share the
        one-time encoding.
    task:
        A registered task name (see :data:`CLASS_TASKS`) or an explicit
        ``"module:function"`` path.
    task_options:
        A pickleable dictionary passed verbatim to every task invocation.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Worker count for the parallel executors (default: 4).
    batch_size:
        Classes per work unit.  Defaults to spreading the classes evenly
        so each worker sees about four batches (cheap load balancing
        without per-class submission overhead).  Setting it explicitly
        forces the static scheduler (the stealing coordinator plans its
        own cost-weighted bundles).
    limit:
        Run only the first ``limit`` classes.
    use_bdds:
        Forwarded to :class:`~repro.abstraction.bonsai.Bonsai`.
    scheduler:
        How the *process* executor dispatches work: ``"stealing"``
        (default) routes through the cost-aware
        :class:`~repro.pipeline.shard.ShardCoordinator` -- a shared work
        queue dispatched largest-first from observed per-class costs;
        ``"static"`` keeps the original contiguous pre-batching.  The
        serial/thread executors ignore this.
    cost_store:
        An :class:`~repro.store.ArtifactStore` (or its path) whose
        ``costs.json`` sidecars persist observed per-class wall-clock
        between processes.  Optional; without it costs still flow through
        an in-process cache, and a cold schedule falls back to a size
        heuristic.
    unit_costs:
        Explicit ``{class prefix: seconds}`` scheduling weights,
        overriding the store lookup (benchmarks and tests).
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        *,
        artifact: Optional[EncodedNetwork] = None,
        task: str = "compress",
        task_options: Optional[dict] = None,
        executor: str = "process",
        workers: int = 4,
        batch_size: Optional[int] = None,
        limit: Optional[int] = None,
        use_bdds: bool = True,
        scheduler: str = "stealing",
        cost_store=None,
        unit_costs: Optional[Dict[str, float]] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        if network is None and artifact is None:
            raise ValueError("either a network or an EncodedNetwork is required")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        self.network = artifact.network if artifact is not None else network
        self.artifact = artifact
        self.task = resolve_class_task(task)
        self.task_options = dict(task_options or {})
        self.executor = executor
        self.workers = workers
        self.batch_size = batch_size
        self.limit = limit
        self.use_bdds = use_bdds
        self.scheduler = scheduler
        self.cost_store = cost_store
        self.unit_costs = dict(unit_costs) if unit_costs else None
        #: What the most recent :meth:`execute` actually ran.
        self.last_classes: List[EquivalenceClass] = []
        self.last_batches: List[List[Tuple[int, EquivalenceClass]]] = []
        self.last_scheduler: str = "static"
        #: Observed per-class wall-clock / unit counts of the last execute
        #: (what gets recorded into the cost model).
        self.last_unit_seconds: Dict[str, float] = {}
        self.last_unit_counts: Dict[str, int] = {}
        self._fingerprint: Optional[str] = None
        self._unit_obs: List[Tuple[int, int, dict]] = []

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _ensure_artifact(self) -> EncodedNetwork:
        if self.artifact is None:
            with trace.span("encode", network=self.network.name):
                self.artifact = EncodedNetwork.build(
                    self.network, use_bdds=self.use_bdds
                )
        return self.artifact

    def partition(
        self, classes: Sequence[EquivalenceClass]
    ) -> List[List[Tuple[int, EquivalenceClass]]]:
        """Split the classes into contiguous indexed batches."""
        indexed = list(enumerate(classes))
        if not indexed:
            return []
        size = self.batch_size
        if size is None:
            # ~4 batches per worker: large enough to amortise dispatch,
            # small enough that a straggler batch cannot idle the pool.
            size = max(1, -(-len(indexed) // (self.workers * 4)))
        return [indexed[i : i + size] for i in range(0, len(indexed), size)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prepare(self) -> Tuple[EncodedNetwork, List[EquivalenceClass]]:
        """Build (or reuse) the artifact and resolve the classes to run.

        Streaming drivers call this before :meth:`execute` so report
        skeletons (class counts, encode time) exist before the first
        result arrives.
        """
        artifact = self._ensure_artifact()
        classes = artifact.classes
        if self.limit is not None:
            classes = classes[: self.limit]
        self.last_classes = classes
        return artifact, classes

    def network_fingerprint(self) -> str:
        """The content fingerprint keying this network's observed costs."""
        if self._fingerprint is None:
            from repro.store.fingerprint import network_fingerprint

            self._fingerprint = network_fingerprint(self.network)
        return self._fingerprint

    def execute(
        self,
        on_result: Optional[Callable[[int, object, float], None]] = None,
        collect: Optional[bool] = None,
    ) -> Optional[List[object]]:
        """Run the task on every class.

        With ``on_result`` the per-class results *stream*: the callback
        receives ``(class index, result, observed seconds)`` as each
        class completes (completion order, not class order), and by
        default nothing is collected -- the driver holds O(1) results in
        memory.  Without it, the full result list comes back in class
        order, exactly as before.  ``collect`` overrides the default
        (``on_result is None``) when a caller wants both.

        The classes and batches actually used are kept on
        ``last_classes`` / ``last_batches`` so aggregators report exactly
        what ran instead of re-deriving (and possibly diverging from) the
        batching; observed per-class wall-clock lands on
        ``last_unit_seconds`` and feeds the cost model for the next run.
        """
        if collect is None:
            collect = on_result is None
        artifact, classes = self.prepare()
        self.last_unit_seconds = {}
        self.last_unit_counts = {}
        sweep_t0 = time.perf_counter()
        if _events.enabled():
            self._emit_sweep_start(classes)

        stealing = (
            self.executor == "process"
            and self.scheduler == "stealing"
            and self.batch_size is None
            and bool(classes)
        )
        self.last_scheduler = "stealing" if stealing else "static"
        #: Per-unit observability captures -- ``(index, chunk, blob)`` --
        #: buffered during the run and folded in *sorted by (index,
        #: chunk)* afterwards, so the attached trace subtrees (and merged
        #: counter deltas) are independent of completion order.
        self._unit_obs: List[Tuple[int, int, dict]] = []
        if stealing:
            indexed_results = self._run_stealing(
                artifact, classes, on_result=on_result, collect=collect
            )
        else:
            batches = self.partition(classes)
            self.last_batches = batches
            if self.executor == "serial" or not batches:
                indexed_results = self._run_serial(
                    artifact, batches, on_result=on_result, collect=collect
                )
            else:
                indexed_results = self._run_pool(
                    artifact, batches, on_result=on_result, collect=collect
                )
        self._finalize_unit_obs(merge_metrics=self.executor == "process")
        self._record_costs()
        _events.emit(
            "sweep.end",
            task=self.task,
            network=self.network.name,
            classes=len(classes),
            seconds=round(time.perf_counter() - sweep_t0, 6),
        )

        if not collect:
            return None
        return [result for _, result in sorted(indexed_results, key=lambda p: p[0])]

    def _emit_sweep_start(self, classes: Sequence[EquivalenceClass]) -> None:
        """The ``sweep.start`` event, carrying the cost model's per-class
        estimates (warm ``costs.json`` numbers when available, the
        structural heuristic otherwise) so the progress meter's ETA is
        cost-weighted, not count-weighted.  Only built when someone is
        listening -- the cost lookup is not free."""
        from repro.pipeline import shard as _shard

        try:
            known = _shard.lookup_costs(
                self.network_fingerprint(), self.task, self.cost_store
            )
        except Exception:
            known = {}
        costs = {
            str(ec.prefix): round(
                known.get(str(ec.prefix), _shard.heuristic_cost(ec)), 6
            )
            for ec in classes
        }
        _events.emit(
            "sweep.start",
            task=self.task,
            network=self.network.name,
            executor=self.executor,
            scheduler=self.scheduler,
            workers=1 if self.executor == "serial" else self.workers,
            classes=len(classes),
            costs=costs,
        )

    def _note_unit(
        self,
        index: int,
        equivalence_class: EquivalenceClass,
        result: object,
        seconds: float,
        on_result,
        out,
    ) -> None:
        prefix = str(equivalence_class.prefix)
        self.last_unit_seconds[prefix] = (
            self.last_unit_seconds.get(prefix, 0.0) + seconds
        )
        self.last_unit_counts[prefix] = self.last_unit_counts.get(prefix, 0) + 1
        _events.emit(
            "class.completed",
            task=self.task,
            index=index,
            cls=prefix,
            seconds=round(seconds, 6),
        )
        if on_result is not None:
            on_result(index, result, seconds)
        if out is not None:
            out.append((index, result))

    def _finalize_unit_obs(self, merge_metrics: bool) -> None:
        """Fold the buffered per-unit captures into the coordinator.

        Worker counter deltas merge into the global registry (process
        pools only); captured span subtrees attach under the current span
        sorted by (class index, chunk index), a split class's chunks
        merged back into one class span -- so the resulting trace tree is
        bit-identical across serial, thread, process and stealing runs.
        """
        entries = self._unit_obs
        self._unit_obs = []
        if merge_metrics:
            for _, _, blob in entries:
                delta = blob.get("metrics")
                if delta:
                    _metrics.merge_counters(delta)
        for prefix, seconds in sorted(self.last_unit_seconds.items()):
            _metrics.histogram("pipeline.class_seconds").observe(seconds)
        _metrics.counter("pipeline.classes_completed").inc(
            sum(self.last_unit_counts.values())
        )
        if not trace.active():
            return
        by_index: Dict[int, List[Tuple[int, dict]]] = {}
        for index, chunk, blob in entries:
            span_dict = blob.get("span")
            if span_dict is not None:
                by_index.setdefault(index, []).append((chunk, span_dict))
        for index in sorted(by_index):
            chunks = [s for _, s in sorted(by_index[index], key=lambda pair: pair[0])]
            trace.attach(trace.merge_chunk_spans(chunks))

    def _record_costs(self) -> None:
        """Transparently persist observed per-class costs (advisory: a
        broken cost store must never fail the sweep it advised)."""
        if not self.last_unit_seconds:
            return
        if self.cost_store is None and self.last_scheduler != "stealing":
            return
        try:
            from repro.pipeline import shard

            shard.remember_costs(
                self.network_fingerprint(),
                self.task,
                self.last_unit_seconds,
                self.last_unit_counts,
                cost_store=self.cost_store,
            )
        except Exception:  # noqa: BLE001 - cost data is advisory
            pass

    def _run_stealing(
        self,
        artifact: EncodedNetwork,
        classes: Sequence[EquivalenceClass],
        on_result,
        collect: bool,
    ) -> List[Tuple[int, object]]:
        from repro.pipeline import shard

        coordinator = shard.ShardCoordinator(
            artifact=artifact,
            task_path=self.task,
            options=self.task_options,
            classes=classes,
            workers=self.workers,
            unit_costs=self.unit_costs,
            fingerprint=self.network_fingerprint(),
            cost_store=self.cost_store,
        )
        coordinator.plan()
        self.last_batches = [
            [(unit.index, unit.equivalence_class) for unit in bundle]
            for bundle in coordinator.bundles
        ]
        results = coordinator.run(on_result=on_result, collect=collect)
        self.last_unit_seconds = dict(coordinator.observed_seconds)
        self.last_unit_counts = dict(coordinator.observed_units)
        self._unit_obs.extend(coordinator.captured_obs)
        return results if results is not None else []

    def _run_serial(
        self,
        artifact: EncodedNetwork,
        batches: List[List[Tuple[int, EquivalenceClass]]],
        on_result=None,
        collect: bool = True,
    ) -> List[Tuple[int, object]]:
        bonsai = artifact.make_bonsai()
        task = _import_task(self.task)
        capture = trace.active()
        out: Optional[List[Tuple[int, object]]] = [] if collect else None
        for batch in batches:
            for index, equivalence_class in batch:
                start = time.perf_counter()
                # Even inline units go through capture_unit: spans buffer
                # and attach index-sorted afterwards, exactly like pool
                # units, so serial and pooled trace trees are identical.
                with trace.capture_unit(
                    capture, False, cls=str(equivalence_class.prefix)
                ) as obs:
                    try:
                        result = task(bonsai, equivalence_class, self.task_options)
                    except Exception as exc:
                        raise PipelineError(
                            f"task {self.task!r} on equivalence class "
                            f"{equivalence_class.prefix} failed: {exc!r}"
                        ) from exc
                if capture:
                    self._unit_obs.append((index, 0, obs))
                self._note_unit(
                    index,
                    equivalence_class,
                    result,
                    time.perf_counter() - start,
                    on_result,
                    out,
                )
        return out if out is not None else []

    def _make_pool(self, payload: bytes) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(payload,),
            )
        return ThreadPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(payload,),
        )

    def _run_pool(
        self,
        artifact: EncodedNetwork,
        batches: List[List[Tuple[int, EquivalenceClass]]],
        on_result=None,
        collect: bool = True,
    ) -> List[Tuple[int, object]]:
        payload = artifact.to_bytes()
        class_by_index = {index: ec for batch in batches for index, ec in batch}
        out: Optional[List[Tuple[int, object]]] = [] if collect else None
        capture = trace.active()
        ship_metrics = self.executor == "process"
        try:
            with self._make_pool(payload) as pool:
                pending = {
                    pool.submit(
                        _run_batch,
                        self.task,
                        batch,
                        self.task_options,
                        capture,
                        ship_metrics,
                    )
                    for batch in batches
                }
                try:
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            for index, item, seconds, obs in future.result():
                                if isinstance(item, _WorkerFailure):
                                    raise PipelineError(
                                        f"task {self.task!r} on equivalence class "
                                        f"{item.prefix} failed in a "
                                        f"{self.executor} worker: {item.error}\n"
                                        f"{item.traceback}"
                                    )
                                if obs is not None:
                                    self._unit_obs.append((index, 0, obs))
                                self._note_unit(
                                    index,
                                    class_by_index[index],
                                    item,
                                    seconds,
                                    on_result,
                                    out,
                                )
                except BaseException:
                    # Surface the error now rather than after every queued
                    # batch has run to completion.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        except PipelineError:
            raise
        except Exception as exc:
            # e.g. BrokenProcessPool when a worker dies outright.
            raise PipelineError(
                f"{self.executor} pool failed while running {self.task!r} on "
                f"{self.network.name}: {exc!r}"
            ) from exc
        return out if out is not None else []


@dataclass
class PipelineRun:
    """The outcome of one compression-pipeline execution."""

    #: Full per-class results, in equivalence-class order.
    results: List[CompressionResult]
    #: Aggregated, JSON-serialisable view of the run.
    report: PipelineReport


class CompressionPipeline(ClassFanOut):
    """Batch, fan out, and aggregate per-class compression.

    This is :class:`ClassFanOut` specialised to the ``"compress"`` task,
    plus aggregation of the per-class outcomes into a
    :class:`~repro.pipeline.report.PipelineReport`.

    Parameters are those of :class:`ClassFanOut` (minus ``task`` /
    ``task_options``) plus:

    build_networks:
        Whether workers also emit the abstract configured network per class.
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        *,
        artifact: Optional[EncodedNetwork] = None,
        executor: str = "process",
        workers: int = 4,
        batch_size: Optional[int] = None,
        limit: Optional[int] = None,
        build_networks: bool = False,
        use_bdds: bool = True,
        scheduler: str = "stealing",
        cost_store=None,
        unit_costs: Optional[Dict[str, float]] = None,
    ):
        super().__init__(
            network,
            artifact=artifact,
            task="compress",
            task_options={"build_networks": build_networks},
            executor=executor,
            workers=workers,
            batch_size=batch_size,
            limit=limit,
            use_bdds=use_bdds,
            scheduler=scheduler,
            cost_store=cost_store,
            unit_costs=unit_costs,
        )
        self.build_networks = build_networks

    @classmethod
    def from_bonsai(cls, bonsai: Bonsai, **kwargs) -> "CompressionPipeline":
        """A pipeline reusing a ``Bonsai``'s network and (built) encoder."""
        artifact = EncodedNetwork.build(
            bonsai.network,
            use_bdds=bonsai.use_bdds,
            encoder=bonsai.encoder if bonsai.use_bdds else None,
        )
        kwargs.setdefault("use_bdds", bonsai.use_bdds)
        return cls(artifact=artifact, **kwargs)

    def run(self) -> PipelineRun:
        """Compress every class and aggregate the results."""
        from repro import obs

        counters_before = obs.snapshot_run()
        start = time.perf_counter()
        results = self.execute()
        total_seconds = time.perf_counter() - start
        artifact = self.artifact
        classes = self.last_classes
        batches = self.last_batches
        report = PipelineReport(
            network_name=self.network.name,
            executor=self.executor,
            workers=1 if self.executor == "serial" else self.workers,
            batch_size=len(batches[0]) if batches else 0,
            num_batches=len(batches),
            num_classes=len(classes),
            encode_seconds=artifact.encode_seconds,
            total_seconds=total_seconds,
            records=[EcRecord.from_result(result) for result in results],
        )
        obs.finish_run(report, counters_before)
        return PipelineRun(results=results, report=report)

    def run_streaming(
        self, spill: bool = True, spill_path: Optional[str] = None
    ) -> PipelineReport:
        """Compress every class, aggregating *incrementally*.

        Per-class records merge into the report as they stream off the
        pool (``merge_partial``); with ``spill`` (default) each record is
        written to a JSONL spill file the moment it arrives, so the
        driver holds O(1) records in memory regardless of network size.
        Returns the report only -- callers needing the full
        ``CompressionResult`` objects want :meth:`run`.
        """
        from repro import obs

        counters_before = obs.snapshot_run()
        start = time.perf_counter()
        artifact, classes = self.prepare()
        report = PipelineReport(
            network_name=self.network.name,
            executor=self.executor,
            workers=1 if self.executor == "serial" else self.workers,
            batch_size=0,
            num_batches=0,
            num_classes=len(classes),
            encode_seconds=artifact.encode_seconds,
            total_seconds=0.0,
            records=[],
        )
        if spill:
            from repro.pipeline.stream import RecordSpill

            report.attach_spill(RecordSpill(spill_path))

        def on_result(index: int, result, seconds: float) -> None:
            report.merge_partial(index, EcRecord.from_result(result))

        self.execute(on_result=on_result, collect=False)
        batches = self.last_batches
        report.batch_size = len(batches[0]) if batches else 0
        report.num_batches = len(batches)
        report.total_seconds = time.perf_counter() - start
        obs.finish_run(report, counters_before)
        return report
