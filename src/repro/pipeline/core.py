"""The parallel compression pipeline (§5.1's "classes are independent").

:class:`CompressionPipeline` splits a network's destination equivalence
classes into batches and fans the batches out over a pool of workers.
Three executors are supported:

* ``"process"`` -- a :class:`~concurrent.futures.ProcessPoolExecutor`; the
  one-time :class:`~repro.pipeline.encoded.EncodedNetwork` artifact is
  pickled once and handed to each worker process via the pool initializer,
  so every process owns a private, fully hash-consed
  :class:`~repro.bdd.manager.BddManager`;
* ``"thread"`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`; each
  worker *thread* still receives its own unpickled copy of the artifact
  (the BDD manager is not thread-safe, and private copies keep the output
  bit-identical to the serial run).  Useful when processes are unavailable
  and the per-class work releases the GIL rarely;
* ``"serial"`` -- everything runs inline on the caller's objects, in class
  order, with no pickling.  This is the deterministic fallback and the
  baseline the scaling benchmark compares against.

Results stream back to the coordinator as workers finish; the aggregator
reorders them by class index and folds every per-class outcome into a
:class:`~repro.pipeline.report.PipelineReport`.
"""

from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.abstraction.bonsai import Bonsai, CompressionResult
from repro.abstraction.ec import EquivalenceClass
from repro.config.network import Network
from repro.pipeline.encoded import EncodedNetwork
from repro.pipeline.report import EcRecord, PipelineReport

#: The executors understood by :class:`CompressionPipeline`.
EXECUTORS = ("serial", "thread", "process")


class PipelineError(RuntimeError):
    """A worker failed while compressing an equivalence class."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker state: each process's main thread (process pools) or each
#: worker thread (thread pools) gets its own Bonsai over its own copy of
#: the encoded artifact.
_worker_state = threading.local()


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle a private copy of the one-time artifact."""
    artifact = EncodedNetwork.from_bytes(payload)
    _worker_state.bonsai = artifact.make_bonsai()


def _compress_batch(
    batch: Sequence[Tuple[int, EquivalenceClass]], build_networks: bool
) -> List[Tuple[int, object]]:
    """Compress one batch of ``(index, class)`` pairs in a worker.

    Failures are returned as ``(index, _WorkerFailure)`` markers rather than
    raised, so one bad class produces a clean coordinator-side error naming
    the class instead of a bare pickled traceback from the pool.
    """
    bonsai: Bonsai = _worker_state.bonsai
    out: List[Tuple[int, object]] = []
    for index, equivalence_class in batch:
        try:
            result = bonsai.compress(equivalence_class, build_network=build_networks)
        except Exception as exc:  # noqa: BLE001 - reported to the coordinator
            out.append(
                (
                    index,
                    _WorkerFailure(
                        prefix=str(equivalence_class.prefix),
                        error=repr(exc),
                        traceback=traceback.format_exc(),
                    ),
                )
            )
        else:
            out.append((index, result))
    return out


@dataclass
class _WorkerFailure:
    """A pickleable stand-in for an exception raised inside a worker."""

    prefix: str
    error: str
    traceback: str


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
@dataclass
class PipelineRun:
    """The outcome of one pipeline execution."""

    #: Full per-class results, in equivalence-class order.
    results: List[CompressionResult]
    #: Aggregated, JSON-serialisable view of the run.
    report: PipelineReport


class CompressionPipeline:
    """Batch, fan out, and aggregate per-class compression.

    Parameters
    ----------
    network:
        The configured network to compress (ignored when ``artifact`` is
        given).
    artifact:
        A pre-built :class:`EncodedNetwork`; building one up front lets
        several runs (e.g. serial and parallel benchmark arms) share the
        one-time encoding.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Worker count for the parallel executors (default: 4).
    batch_size:
        Classes per work unit.  Defaults to spreading the classes evenly
        so each worker sees about four batches (cheap load balancing
        without per-class submission overhead).
    limit:
        Compress only the first ``limit`` classes.
    build_networks:
        Whether workers also emit the abstract configured network per class.
    use_bdds:
        Forwarded to :class:`~repro.abstraction.bonsai.Bonsai`.
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        *,
        artifact: Optional[EncodedNetwork] = None,
        executor: str = "process",
        workers: int = 4,
        batch_size: Optional[int] = None,
        limit: Optional[int] = None,
        build_networks: bool = False,
        use_bdds: bool = True,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if network is None and artifact is None:
            raise ValueError("either a network or an EncodedNetwork is required")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        self.network = artifact.network if artifact is not None else network
        self.artifact = artifact
        self.executor = executor
        self.workers = workers
        self.batch_size = batch_size
        self.limit = limit
        self.build_networks = build_networks
        self.use_bdds = use_bdds

    @classmethod
    def from_bonsai(cls, bonsai: Bonsai, **kwargs) -> "CompressionPipeline":
        """A pipeline reusing a ``Bonsai``'s network and (built) encoder."""
        artifact = EncodedNetwork.build(
            bonsai.network,
            use_bdds=bonsai.use_bdds,
            encoder=bonsai.encoder if bonsai.use_bdds else None,
        )
        kwargs.setdefault("use_bdds", bonsai.use_bdds)
        return cls(artifact=artifact, **kwargs)

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _ensure_artifact(self) -> EncodedNetwork:
        if self.artifact is None:
            self.artifact = EncodedNetwork.build(self.network, use_bdds=self.use_bdds)
        return self.artifact

    def partition(
        self, classes: Sequence[EquivalenceClass]
    ) -> List[List[Tuple[int, EquivalenceClass]]]:
        """Split the classes into contiguous indexed batches."""
        indexed = list(enumerate(classes))
        if not indexed:
            return []
        size = self.batch_size
        if size is None:
            # ~4 batches per worker: large enough to amortise dispatch,
            # small enough that a straggler batch cannot idle the pool.
            size = max(1, -(-len(indexed) // (self.workers * 4)))
        return [indexed[i : i + size] for i in range(0, len(indexed), size)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> PipelineRun:
        """Compress every class and aggregate the results."""
        start = time.perf_counter()
        artifact = self._ensure_artifact()
        classes = artifact.classes
        if self.limit is not None:
            classes = classes[: self.limit]
        batches = self.partition(classes)

        if self.executor == "serial" or not batches:
            indexed_results = self._run_serial(artifact, batches)
        else:
            indexed_results = self._run_pool(artifact, batches)

        results = [result for _, result in sorted(indexed_results, key=lambda p: p[0])]
        total_seconds = time.perf_counter() - start
        report = PipelineReport(
            network_name=self.network.name,
            executor=self.executor,
            workers=1 if self.executor == "serial" else self.workers,
            batch_size=len(batches[0]) if batches else 0,
            num_batches=len(batches),
            num_classes=len(classes),
            encode_seconds=artifact.encode_seconds,
            total_seconds=total_seconds,
            records=[EcRecord.from_result(result) for result in results],
        )
        return PipelineRun(results=results, report=report)

    def _run_serial(
        self,
        artifact: EncodedNetwork,
        batches: List[List[Tuple[int, EquivalenceClass]]],
    ) -> List[Tuple[int, CompressionResult]]:
        bonsai = artifact.make_bonsai()
        out: List[Tuple[int, CompressionResult]] = []
        for batch in batches:
            for index, equivalence_class in batch:
                try:
                    result = bonsai.compress(
                        equivalence_class, build_network=self.build_networks
                    )
                except Exception as exc:
                    raise PipelineError(
                        f"compression of equivalence class "
                        f"{equivalence_class.prefix} failed: {exc!r}"
                    ) from exc
                out.append((index, result))
        return out

    def _make_pool(self, payload: bytes) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(payload,),
            )
        return ThreadPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(payload,),
        )

    def _run_pool(
        self,
        artifact: EncodedNetwork,
        batches: List[List[Tuple[int, EquivalenceClass]]],
    ) -> List[Tuple[int, CompressionResult]]:
        payload = artifact.to_bytes()
        out: List[Tuple[int, CompressionResult]] = []
        try:
            with self._make_pool(payload) as pool:
                pending = {
                    pool.submit(_compress_batch, batch, self.build_networks)
                    for batch in batches
                }
                try:
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            for index, item in future.result():
                                if isinstance(item, _WorkerFailure):
                                    raise PipelineError(
                                        f"compression of equivalence class "
                                        f"{item.prefix} failed in a "
                                        f"{self.executor} worker: {item.error}\n"
                                        f"{item.traceback}"
                                    )
                                out.append((index, item))
                except BaseException:
                    # Surface the error now rather than after every queued
                    # batch has run to completion.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        except PipelineError:
            raise
        except Exception as exc:
            # e.g. BrokenProcessPool when a worker dies outright.
            raise PipelineError(
                f"{self.executor} pool failed while compressing "
                f"{self.network.name}: {exc!r}"
            ) from exc
        return out
