"""Cost-aware shard coordinator: shared-queue work stealing for sweeps.

:class:`~repro.pipeline.core.ClassFanOut`'s original process executor
pre-batched the classes into contiguous slices -- fine when classes cost
about the same, but destination classes are *wildly* unequal (a fat-tree
edge class touches a handful of pods, a WAN core class the whole
backbone), so the slowest pre-cut batch bottlenecks the sweep while the
other workers idle.  :class:`ShardCoordinator` replaces the pre-cut with
a shared work queue:

* the classes are turned into **cost-weighted work units** -- whole
  classes, or (for the failures/delta tasks, whose per-class work is a
  list of independent scenarios / a chainable list of steps) sub-class
  chunks registered in :data:`UNIT_SPLITTERS`;
* unit costs come from **observed wall-clock of prior runs**, recorded
  per ``(network fingerprint, task)`` into an in-process cache and --
  when a cost store is configured -- a schema-versioned ``costs.json``
  sidecar in the :class:`~repro.store.ArtifactStore` entry (see
  :meth:`~repro.store.ArtifactStore.record_costs`); a cold store falls
  back to a size heuristic;
* units are dispatched **largest-first** into the pool's shared call
  queue, cheap tail units greedily bundled to amortise dispatch
  overhead; whichever worker goes idle steals the next costliest unit,
  so a straggler class can no longer serialise the sweep;
* results **stream back** to the coordinator as they complete --
  sub-class chunks are re-merged in chunk order, so downstream reports
  stay bit-identical to a serial run -- and per-class observed costs are
  collected for the next run's schedule.

The coordinator is an engine-room class: :class:`ClassFanOut` routes its
process executor through it by default (``scheduler="stealing"``), so
every pillar riding the fan-out -- compress, verify, failures, delta,
baseline bakes -- gets the scheduler without code changes.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.abstraction.ec import EquivalenceClass
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace
from repro.pipeline import core as _core
from repro.pipeline.encoded import EncodedNetwork

#: The schedulers :class:`~repro.pipeline.core.ClassFanOut` understands.
SCHEDULERS = _core.SCHEDULERS


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
#: ``(network fingerprint, task path) -> {class prefix: observed seconds}``,
#: updated after every sweep in this process.  The persistent twin lives
#: in the artifact store's ``costs.json`` sidecars.
_PROCESS_COST_CACHE: Dict[Tuple[str, str], Dict[str, float]] = {}


def resolve_cost_store(store):
    """Normalise a cost-store reference (path / store / None) to an
    :class:`~repro.store.ArtifactStore` or ``None``."""
    if store is None or hasattr(store, "record_costs"):
        return store
    from repro.store import ArtifactStore  # lazy: avoids an import cycle

    return ArtifactStore(store)


def remember_costs(
    fingerprint: str,
    task_path: str,
    unit_seconds: Dict[str, float],
    unit_counts: Optional[Dict[str, int]] = None,
    cost_store=None,
) -> None:
    """Record one sweep's observed per-class costs (cache + store)."""
    if not unit_seconds:
        return
    _PROCESS_COST_CACHE[(fingerprint, task_path)] = dict(unit_seconds)
    store = resolve_cost_store(cost_store)
    if store is not None:
        store.record_costs(fingerprint, task_path, unit_seconds, unit_counts)


def lookup_costs(fingerprint: str, task_path: str, cost_store=None) -> Dict[str, float]:
    """Prior observed per-class costs: the store's sidecar, overlaid with
    anything fresher this process has seen.  Empty on a cold start."""
    merged: Dict[str, float] = {}
    store = resolve_cost_store(cost_store)
    if store is not None:
        stored = store.load_costs(fingerprint).get("tasks", {}).get(task_path, {})
        for prefix, seconds in (stored.get("unit_seconds") or {}).items():
            try:
                merged[str(prefix)] = float(seconds)
            except (TypeError, ValueError):
                continue
    merged.update(_PROCESS_COST_CACHE.get((fingerprint, task_path), {}))
    return merged


def heuristic_cost(equivalence_class: EquivalenceClass) -> float:
    """The cold-store fallback: a size heuristic.  Classes with more
    origins touch more of the graph (bigger SRPs, more verdict rows), so
    they are scheduled earlier; otherwise costs are uniform."""
    return 1.0 + 0.25 * len(equivalence_class.origins)


# ----------------------------------------------------------------------
# Sub-class unit splitting (failures: scenarios; delta: step ranges)
# ----------------------------------------------------------------------
def _chunk_bounds(total: int, pieces: int) -> List[Tuple[int, int]]:
    """``pieces`` near-equal contiguous ``[start, end)`` ranges of
    ``range(total)`` (fewer when ``total < pieces``), order-preserving."""
    pieces = max(1, min(pieces, total))
    base, extra = divmod(total, pieces)
    bounds = []
    start = 0
    for i in range(pieces):
        end = start + base + (1 if i < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def _split_failure_options(options: dict, pieces: int):
    """Scenario chunks: outcomes are independent per scenario, so a chunk
    is just the same task over a slice of ``options["scenarios"]``."""
    scenarios = options.get("scenarios") or []
    if len(scenarios) < 2:
        return None
    bounds = _chunk_bounds(len(scenarios), pieces)
    if len(bounds) < 2:
        return None
    patches = [{"scenarios": scenarios[a:b]} for a, b in bounds]
    fractions = [(b - a) / len(scenarios) for a, b in bounds]
    return patches, fractions


def _split_delta_options(options: dict, pieces: int):
    """Step-range chunks: steps chain (each seeds from the previous), so
    a chunk carries ``step_range=[a, b)`` and the task fast-forwards by
    scratch-solving step ``a-1`` as its seed -- labelings are unique
    fixed points, so the chunk's outcomes match the chained serial run's
    (``repro.delta.sweep.delta_class_task`` implements the replay)."""
    script = options.get("script") or []
    if len(script) < 2:
        return None
    bounds = _chunk_bounds(len(script), pieces)
    if len(bounds) < 2:
        return None
    patches = [{"step_range": [a, b]} for a, b in bounds]
    fractions = [(b - a) / len(script) for a, b in bounds]
    return patches, fractions


def _merge_failure_chunks(chunks: List[object]) -> object:
    """Chunk 0's record (baseline fields) with every chunk's scenarios
    concatenated in chunk order == original scenario order."""
    merged = chunks[0]
    for extra in chunks[1:]:
        merged.scenarios.extend(extra.scenarios)
    return merged


def _merge_delta_chunks(chunks: List[object]) -> object:
    merged = chunks[0]
    for extra in chunks[1:]:
        merged.steps.extend(extra.steps)
    return merged


#: ``task path -> splitter(options, pieces) -> (patches, fractions) | None``.
UNIT_SPLITTERS: Dict[str, Callable] = {
    "repro.failures.sweep:failure_class_task": _split_failure_options,
    "repro.delta.sweep:delta_class_task": _split_delta_options,
}

#: ``task path -> merger(chunk results in chunk order) -> record``.
UNIT_MERGERS: Dict[str, Callable] = {
    "repro.failures.sweep:failure_class_task": _merge_failure_chunks,
    "repro.delta.sweep:delta_class_task": _merge_delta_chunks,
}


def register_unit_splitter(task_path: str, splitter: Callable, merger: Callable) -> None:
    """Register sub-class splitting for a task: ``splitter(options,
    pieces)`` returns ``(options patches, weight fractions)`` or ``None``;
    ``merger(chunk results)`` reassembles the per-class record."""
    UNIT_SPLITTERS[task_path] = splitter
    UNIT_MERGERS[task_path] = merger


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclass
class WorkUnit:
    """One schedulable piece of work: a class, or a chunk of one."""

    index: int
    equivalence_class: EquivalenceClass
    #: Chunk id within the class (0 when the class was not split).
    chunk: int = 0
    #: Total chunks the class was split into.
    chunks: int = 1
    #: Task-options overlay for this chunk (``None`` = whole class).
    patch: Optional[dict] = None
    #: Scheduling weight (seconds when warm, heuristic units when cold).
    cost: float = 1.0

    @property
    def uid(self) -> Tuple[int, int]:
        return (self.index, self.chunk)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _run_units(
    task_path: str,
    units: Sequence[Tuple[Tuple[int, int], int, EquivalenceClass, Optional[dict]]],
    options: dict,
    capture_trace: bool = False,
):
    """Run one bundle of units in a pool worker; per-unit wall-clock is
    measured here so the coordinator can record observed costs, and each
    unit's captured span subtree + counter delta ride back with the
    result (``capture_trace`` relays the coordinator's ``trace.active()``
    -- worker processes never saw ``trace.begin()``).  Failures come back
    as markers, like :func:`repro.pipeline.core._run_batch`."""
    bonsai = _core._worker_state.bonsai
    task = _core._import_task(task_path)
    out = []
    for uid, index, equivalence_class, patch in units:
        effective = options if patch is None else {**options, **patch}
        start = time.perf_counter()
        with trace.capture_unit(
            capture_trace, True, cls=str(equivalence_class.prefix)
        ) as obs:
            try:
                result = task(bonsai, equivalence_class, effective)
            except Exception as exc:  # noqa: BLE001 - reported to the coordinator
                result = _core._WorkerFailure(
                    prefix=str(equivalence_class.prefix),
                    error=repr(exc),
                    traceback=traceback.format_exc(),
                )
        out.append((uid, index, result, time.perf_counter() - start, obs))
    return out


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ShardCoordinator:
    """Dispatch cost-weighted units largest-first into a shared queue.

    The "queue" is the process pool's own call queue: every unit (bundle)
    is submitted up front in descending cost order, and whichever worker
    finishes its current unit pulls the next costliest one -- work
    stealing without hand-rolled IPC, with results streamed back through
    the normal futures machinery.

    Parameters
    ----------
    artifact:
        The built :class:`EncodedNetwork` (pickled once per worker via
        the pool initializer).
    task_path:
        The resolved ``"module:function"`` task.
    options:
        Task options shared by every unit (chunk patches overlay them).
    classes:
        The (already limited) classes, in report order.
    workers:
        Pool size.
    unit_costs:
        Explicit ``{prefix: seconds}`` schedule weights; overrides the
        store/cache lookup (benchmarks and tests use this).
    fingerprint / cost_store:
        Where prior observed costs are looked up (either may be absent;
        the heuristic covers the gaps).
    split:
        Whether to split classes into sub-units when the class count
        cannot keep the pool busy (needs a registered splitter).
    """

    def __init__(
        self,
        *,
        artifact: EncodedNetwork,
        task_path: str,
        options: dict,
        classes: Sequence[EquivalenceClass],
        workers: int,
        unit_costs: Optional[Dict[str, float]] = None,
        fingerprint: Optional[str] = None,
        cost_store=None,
        split: bool = True,
    ) -> None:
        self.artifact = artifact
        self.task_path = task_path
        self.options = dict(options or {})
        self.classes = list(classes)
        self.workers = max(1, int(workers))
        self.unit_costs = dict(unit_costs) if unit_costs else None
        self.fingerprint = fingerprint
        self.cost_store = cost_store
        self.split = split
        #: Filled by :meth:`plan`.
        self.units: List[WorkUnit] = []
        self.bundles: List[List[WorkUnit]] = []
        #: Whether any prior observed costs informed the schedule.
        self.warm = False
        #: Filled by :meth:`run`: per-class observed seconds / unit counts.
        self.observed_seconds: Dict[str, float] = {}
        self.observed_units: Dict[str, int] = {}
        #: Per-unit observability captures -- ``(index, chunk, blob)`` --
        #: for :meth:`ClassFanOut._finalize_unit_obs`.
        self.captured_obs: List[Tuple[int, int, dict]] = []

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _known_costs(self) -> Dict[str, float]:
        if self.unit_costs is not None:
            return dict(self.unit_costs)
        if self.fingerprint is None:
            return {}
        return lookup_costs(self.fingerprint, self.task_path, self.cost_store)

    def plan(self) -> List[List[WorkUnit]]:
        """Build the largest-first bundle list (idempotent)."""
        if self.bundles:
            return self.bundles
        known = self._known_costs()
        self.warm = any(str(ec.prefix) in known for ec in self.classes)

        # Split classes into chunks only when there are too few of them
        # to keep the pool busy; chunk overhead (each chunk re-pays the
        # class baseline) is only worth paying to kill stragglers.
        pieces = 1
        splitter = UNIT_SPLITTERS.get(self.task_path) if self.split else None
        if splitter is not None and self.classes:
            if len(self.classes) < self.workers * 2:
                pieces = -(-self.workers * 2 // len(self.classes))

        units: List[WorkUnit] = []
        for index, equivalence_class in enumerate(self.classes):
            cost = known.get(
                str(equivalence_class.prefix), heuristic_cost(equivalence_class)
            )
            plan = splitter(self.options, pieces) if (splitter and pieces > 1) else None
            if plan is None:
                units.append(
                    WorkUnit(index=index, equivalence_class=equivalence_class, cost=cost)
                )
                continue
            patches, fractions = plan
            for chunk, (patch, fraction) in enumerate(zip(patches, fractions)):
                units.append(
                    WorkUnit(
                        index=index,
                        equivalence_class=equivalence_class,
                        chunk=chunk,
                        chunks=len(patches),
                        patch=patch,
                        cost=cost * fraction,
                    )
                )

        # Largest-first; ties broken by class order for determinism.
        units.sort(key=lambda u: (-u.cost, u.index, u.chunk))
        self.units = units

        # Greedy tail bundling: walking in dispatch order, pack units
        # into one submission until the bundle is worth a dispatch.
        # Heavy units become singletons; the cheap tail amortises.
        total = sum(unit.cost for unit in units)
        threshold = total / (self.workers * 8) if units else 0.0
        bundles: List[List[WorkUnit]] = []
        current: List[WorkUnit] = []
        current_cost = 0.0
        for unit in units:
            current.append(unit)
            current_cost += unit.cost
            if current_cost >= threshold:
                bundles.append(current)
                current = []
                current_cost = 0.0
        if current:
            bundles.append(current)
        self.bundles = bundles
        _metrics.counter("shard.units").inc(len(units))
        _metrics.counter("shard.bundles").inc(len(bundles))
        _metrics.counter("shard.split_classes").inc(
            len({unit.index for unit in units if unit.chunks > 1})
        )
        if self.warm:
            _metrics.counter("shard.warm_plans").inc()
        # Bundles beyond one per worker are pulled by whichever worker
        # drains its queue first -- the "stolen" share of the schedule.
        stolen = max(0, len(bundles) - min(self.workers, len(bundles)))
        _metrics.counter("shard.steals").inc(stolen)
        if _events.enabled():
            for index in sorted({u.index for u in units if u.chunks > 1}):
                chunks = max(u.chunks for u in units if u.index == index)
                _events.emit(
                    "class.split",
                    task=self.task_path,
                    index=index,
                    cls=str(self.classes[index].prefix),
                    chunks=chunks,
                )
            if stolen:
                _events.emit(
                    "units.stolen",
                    task=self.task_path,
                    bundles=len(bundles),
                    workers=self.workers,
                    stolen=stolen,
                )
        return bundles

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        on_result: Optional[Callable[[int, object, float], None]] = None,
        collect: bool = True,
    ) -> Optional[List[Tuple[int, object]]]:
        """Run every unit; per-class results stream to ``on_result(index,
        record, seconds)`` as their last chunk lands (chunks re-merged in
        chunk order, so merged records match the unsplit task's output).
        Returns the ``(index, record)`` list when ``collect``."""
        bundles = self.plan()
        results: Optional[List[Tuple[int, object]]] = [] if collect else None
        self.observed_seconds = {}
        self.observed_units = {}
        self.captured_obs = []
        if not bundles:
            return results
        capture_trace = trace.active()
        merger = UNIT_MERGERS.get(self.task_path)
        #: class index -> {chunk: result} for classes awaiting chunks.
        partial: Dict[int, Dict[int, object]] = {}
        expected: Dict[int, int] = {}
        payload = self.artifact.to_bytes()

        def finish(index: int, unit: WorkUnit, record: object) -> None:
            prefix = str(unit.equivalence_class.prefix)
            # The stealing coordinator bypasses ClassFanOut._note_unit, so
            # it owns the per-class completion event here -- same shape,
            # once per class (after chunk re-merge), keeping the stream's
            # ordered completion set identical across executors.
            _events.emit(
                "class.completed",
                task=self.task_path,
                index=index,
                cls=prefix,
                seconds=round(self.observed_seconds.get(prefix, 0.0), 6),
            )
            if on_result is not None:
                on_result(index, record, self.observed_seconds.get(prefix, 0.0))
            if results is not None:
                results.append((index, record))

        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(bundles)),
                initializer=_core._init_worker,
                initargs=(payload,),
            ) as pool:
                unit_by_uid = {unit.uid: unit for unit in self.units}
                pending = {
                    pool.submit(
                        _run_units,
                        self.task_path,
                        [
                            (unit.uid, unit.index, unit.equivalence_class, unit.patch)
                            for unit in bundle
                        ],
                        self.options,
                        capture_trace,
                    )
                    for bundle in bundles
                }
                try:
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            for uid, index, item, seconds, obs in future.result():
                                unit = unit_by_uid[uid]
                                prefix = str(unit.equivalence_class.prefix)
                                if isinstance(item, _core._WorkerFailure):
                                    raise _core.PipelineError(
                                        f"task {self.task_path!r} on equivalence "
                                        f"class {item.prefix} failed in a process "
                                        f"worker: {item.error}\n{item.traceback}"
                                    )
                                self.captured_obs.append((index, unit.chunk, obs))
                                self.observed_seconds[prefix] = (
                                    self.observed_seconds.get(prefix, 0.0) + seconds
                                )
                                self.observed_units[prefix] = (
                                    self.observed_units.get(prefix, 0) + 1
                                )
                                if unit.chunks == 1:
                                    finish(index, unit, item)
                                    continue
                                chunks = partial.setdefault(index, {})
                                chunks[unit.chunk] = item
                                expected[index] = unit.chunks
                                if len(chunks) == expected[index]:
                                    ordered = [
                                        chunks[i] for i in range(expected[index])
                                    ]
                                    record = (
                                        merger(ordered)
                                        if merger is not None
                                        else ordered[-1]
                                    )
                                    del partial[index]
                                    finish(index, unit, record)
                except BaseException:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        except _core.PipelineError:
            raise
        except Exception as exc:  # e.g. BrokenProcessPool
            raise _core.PipelineError(
                f"stealing pool failed while running {self.task_path!r} on "
                f"{self.artifact.network.name}: {exc!r}"
            ) from exc
        return results


# ----------------------------------------------------------------------
# The synthetic skew task (scale benchmark / example)
# ----------------------------------------------------------------------
def sleep_class_task(bonsai, equivalence_class, options: dict) -> str:
    """The ``"bench-sleep"`` task: sleep a configured per-class duration.

    ``options["sleep_seconds"]`` maps class prefixes to seconds (default
    ``options["default_sleep"]``, default 0.01).  Sleeping workers run
    concurrently even on one CPU, so the scale benchmark's skew stage can
    prove the *scheduling* win (stealing vs static sharding) on any
    machine, independent of core count.
    """
    delays = options.get("sleep_seconds") or {}
    seconds = float(
        delays.get(str(equivalence_class.prefix), options.get("default_sleep", 0.01))
    )
    time.sleep(seconds)
    return str(equivalence_class.prefix)


_core.register_class_task("bench-sleep", "repro.pipeline.shard:sleep_class_task")
