"""JSONL record spill: the disk half of streaming report aggregation.

A sweep over a big topology produces one record per destination class,
and each record can carry hundreds of per-scenario verdict lists.  With
collect-then-merge aggregation the driver's peak RSS is the whole sweep;
with streaming aggregation (``report.merge_partial`` as results arrive)
plus a :class:`RecordSpill`, the driver holds O(1) records: each record
is serialised to one JSON line on disk the moment it arrives and re-read
one line at a time when the report aggregates or writes itself out.

The spill keeps an in-memory ``(class index, byte offset, length)`` table
so iteration yields records in *class order* regardless of the order the
scheduler completed them in -- the same canonicalisation the in-memory
path gets by sorting, so spilled reports stay bit-identical to serial
ones (timings aside).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import events as _events
from repro.obs import metrics as _metrics


class RecordSpill:
    """An append-only JSONL file of ``(index, payload)`` records.

    Parameters
    ----------
    path:
        Where to spill.  Default: an anonymous temp file, unlinked on
        :meth:`close` (and best-effort on garbage collection).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        if path is None:
            handle = tempfile.NamedTemporaryFile(
                mode="w+", encoding="utf-8", suffix=".jsonl",
                prefix="repro-spill-", delete=False,
            )
            self.path = handle.name
            self._owns_file = True
        else:
            handle = open(path, "w+", encoding="utf-8")
            self.path = str(path)
            self._owns_file = False
        self._handle = handle
        #: ``(class index, byte offset, line length)`` per appended record.
        self._entries: List[Tuple[int, int, int]] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, index: int, payload: Dict) -> None:
        """Spill one record's JSON payload under its class index."""
        if self._closed:
            raise ValueError("record spill is closed")
        line = json.dumps(payload, sort_keys=True)
        self._handle.seek(0, os.SEEK_END)
        offset = self._handle.tell()
        self._handle.write(line)
        self._handle.write("\n")
        size = len(line.encode("utf-8"))
        if not self._entries:
            # One event per spill activation (per-record would be noise).
            _events.emit("spill.open", path=self.path)
        self._entries.append((index, offset, size))
        _metrics.counter("pipeline.spill_records").inc()
        _metrics.counter("pipeline.spill_bytes").inc(size + 1)

    # ------------------------------------------------------------------
    # Reading (records come back in class-index order)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, Dict]]:
        """Yield ``(index, payload)`` sorted by class index, one record in
        memory at a time."""
        if self._closed:
            raise ValueError("record spill is closed")
        self._handle.flush()
        with open(self.path, "rb") as reader:
            for index, offset, length in sorted(self._entries):
                reader.seek(offset)
                yield index, json.loads(reader.read(length).decode("utf-8"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close (and, for anonymous spills, delete) the backing file."""
        if self._closed:
            return
        self._closed = True
        if self._entries:
            _events.emit("spill.close", path=self.path, records=len(self._entries))
        try:
            self._handle.close()
        finally:
            if self._owns_file:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass

    def __enter__(self) -> "RecordSpill":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
