"""The programmatic facade: one :class:`Session` for every analysis.

Examples, the CLI and the ``repro.serve`` daemon previously each
re-implemented the same driver wiring (encode, solve, compress, then
dispatch to a sweep).  A :class:`Session` holds a network together with
its warm :class:`~repro.store.BaselineArtifact` and exposes the four
pillars as methods -- :meth:`verify`, :meth:`failures`, :meth:`delta`,
:meth:`k_resilience` -- plus :meth:`save` / :meth:`Session.load` against
an :class:`~repro.store.ArtifactStore`.

The warm paths are the point: :meth:`verify` answers off the stored
forwarding tables and compressions (no re-solve, no re-compression) and
:meth:`delta` validates change scripts with zero baseline re-solves.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.abstraction.ec import EquivalenceClass
from repro.analysis.batch import (
    BatchVerifier,
    ClassVerificationRecord,
    PropertySuite,
    PropertyVerdict,
    VerificationReport,
)
from repro.analysis.properties import evaluate_suite
from repro.config.network import Network
from repro.delta.changeset import ChangeSet
from repro.delta.sweep import DeltaReport, DeltaSweep
from repro.failures.soundness import compare_verdicts, lifted_abstract_verdicts
from repro.failures.sweep import FailureReport, FailureSweep
from repro.store import ArtifactStore, BaselineArtifact
from repro.store.artifact import ClassBaseline


def _warm_class_record(
    network: Network,
    equivalence_class: EquivalenceClass,
    baseline: ClassBaseline,
    suite: PropertySuite,
) -> ClassVerificationRecord:
    """A differential verification record computed entirely from stored
    baseline artifacts: properties are evaluated off the stored concrete
    forwarding table and lifted through the stored compression -- no
    concrete re-solve, no re-compression."""
    specs = suite.specs()
    nodes = sorted(network.graph.nodes, key=str)
    node_names = [str(node) for node in nodes]
    waypoints = frozenset(str(o) for o in equivalence_class.origins)
    path_bound = (
        suite.path_bound if suite.path_bound is not None else network.graph.num_nodes()
    )

    concrete_start = time.perf_counter()
    concrete = evaluate_suite(specs, baseline.table, nodes, waypoints, path_bound)
    concrete_seconds = time.perf_counter() - concrete_start

    abstract_start = time.perf_counter()
    compression = baseline.compression
    lifted = lifted_abstract_verdicts(
        compression.abstraction,
        compression.abstract_network,
        equivalence_class,
        specs,
        node_names,
        waypoints,
        path_bound,
    )
    abstract_seconds = time.perf_counter() - abstract_start
    mismatched = compare_verdicts(concrete, lifted)

    verdicts = [
        PropertyVerdict(
            property=spec.name,
            nodes_checked=len(node_names),
            concrete_failing=[n for n in node_names if not concrete[spec.name][n]],
            abstract_failing=[n for n in node_names if not lifted[spec.name][n]],
            mismatched=list(mismatched.get(spec.name, [])),
        )
        for spec in specs
    ]
    return ClassVerificationRecord(
        prefix=str(equivalence_class.prefix),
        origins=sorted(str(o) for o in equivalence_class.origins),
        concrete_nodes=network.graph.num_nodes(),
        abstract_nodes=compression.abstract_nodes,
        concrete_seconds=concrete_seconds,
        abstract_seconds=abstract_seconds,
        compression_seconds=0.0,
        verdicts=verdicts,
    )


class Session:
    """A network plus its warm baseline, ready to answer queries.

    Parameters
    ----------
    network:
        The configured network.  Omit when ``baseline`` is given.
    baseline:
        An already-built (or loaded) :class:`BaselineArtifact`.  When
        omitted, one is built -- through ``store`` (load-or-build) when a
        store root is given, from scratch otherwise.
    store:
        Artifact-store root directory: :class:`Session` loads a matching
        entry when one verifies, and saves fresh builds back.
    use_bdds / compress:
        Forwarded to :meth:`BaselineArtifact.build` when building.
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        *,
        baseline: Optional[BaselineArtifact] = None,
        store=None,
        use_bdds: bool = True,
        compress: bool = True,
    ) -> None:
        if baseline is None and network is None:
            raise ValueError("a Session needs a network or a BaselineArtifact")
        self.rebuilt = False
        self.rebuild_reason = ""
        if baseline is None:
            if store is not None:
                baseline, self.rebuilt, self.rebuild_reason = ArtifactStore(
                    store
                ).load_or_build(network, use_bdds=use_bdds, compress=compress)
            else:
                baseline = BaselineArtifact.build(
                    network, use_bdds=use_bdds, compress=compress
                )
        elif network is not None and network is not baseline.network:
            if not baseline.matches(network):
                raise ValueError(
                    "baseline artifact does not match the network "
                    "(content fingerprints differ)"
                )
        self.baseline = baseline
        self.network = baseline.network
        self._store_root = store

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        store,
        network: Optional[Network] = None,
        fingerprint: Optional[str] = None,
    ) -> "Session":
        """Strict load from a store, by network content or fingerprint.

        Raises :class:`~repro.store.StoreError` when the entry is missing
        or fails verification (use the constructor with ``store=`` for
        load-or-build semantics).
        """
        artifact_store = ArtifactStore(store)
        if fingerprint is not None:
            baseline = artifact_store.load(fingerprint)
        elif network is not None:
            baseline = artifact_store.load_for(network)
        else:
            raise ValueError("Session.load needs a network or a fingerprint")
        return cls(baseline=baseline, store=store)

    def save(self, store=None) -> Path:
        """Persist the baseline; returns the store entry directory."""
        root = store if store is not None else self._store_root
        if root is None:
            raise ValueError("no store root: pass one to save() or the constructor")
        return ArtifactStore(root).save(self.baseline)

    @property
    def fingerprint(self) -> str:
        return self.baseline.fingerprint

    @property
    def classes(self) -> List[EquivalenceClass]:
        return list(self.baseline.encoded.classes)

    def class_for(self, prefix: str) -> Optional[EquivalenceClass]:
        for candidate in self.baseline.encoded.classes:
            if str(candidate.prefix) == str(prefix):
                return candidate
        return None

    # ------------------------------------------------------------------
    # The pillars
    # ------------------------------------------------------------------
    def _suite(
        self, properties: Optional[Sequence[str]], **params
    ) -> PropertySuite:
        if properties is None:
            return PropertySuite.default(**params)
        return PropertySuite.from_names(list(properties), **params)

    def _warm_ready(self, suite: PropertySuite) -> bool:
        """Warm verification needs stored tables and compressions for every
        class and the default (origin) waypointing -- explicit waypoint
        sets go through the batch path, which handles the non-comparable
        flagging."""
        if suite.waypoints is not None:
            return False
        classes = self.baseline.encoded.classes
        if not classes:
            return False
        for equivalence_class in classes:
            stored = self.baseline.baseline_for(equivalence_class.prefix)
            if (
                stored is None
                or stored.table is None
                or stored.compression is None
                or stored.compression.abstract_network is None
            ):
                return False
        return True

    def verify(
        self,
        properties: Optional[Sequence[str]] = None,
        *,
        prefix: Optional[str] = None,
        warm: bool = True,
        path_bound: Optional[int] = None,
        waypoints: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> VerificationReport:
        """Differential verification; warm (stored-baseline) by default.

        ``prefix`` restricts to one destination class (warm path only).
        Falls back to the :class:`BatchVerifier` when the artifact lacks
        tables/compressions or the suite needs explicit waypoints.
        """
        params: Dict[str, object] = {"path_bound": path_bound}
        if waypoints is not None:
            params["waypoints"] = tuple(waypoints)
        suite = self._suite(properties, **params)

        if warm and self._warm_ready(suite):
            start = time.perf_counter()
            classes = self.baseline.encoded.classes
            if prefix is not None:
                classes = [ec for ec in classes if str(ec.prefix) == str(prefix)]
                if not classes:
                    raise ValueError(f"no destination class at prefix {prefix!r}")
            records = [
                _warm_class_record(
                    self.network,
                    equivalence_class,
                    self.baseline.baseline_for(equivalence_class.prefix),
                    suite,
                )
                for equivalence_class in classes
            ]
            return VerificationReport(
                network_name=self.network.name,
                executor="warm",
                workers=1,
                num_classes=len(records),
                properties=list(suite.names),
                path_bound=suite.path_bound,
                encode_seconds=0.0,
                total_seconds=time.perf_counter() - start,
                records=records,
            )
        if prefix is not None:
            raise ValueError(
                "per-prefix verification requires the warm path "
                "(stored tables and compressions for every class)"
            )
        kwargs.setdefault("executor", "serial")
        return BatchVerifier(
            artifact=self.baseline.encoded, suite=suite, **kwargs
        ).run()

    def failures(
        self,
        k: int = 1,
        properties: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> FailureReport:
        """k-failure sweep over the session's network (shared encoding)."""
        suite = None if properties is None else PropertySuite.from_names(list(properties))
        kwargs.setdefault("executor", "serial")
        return FailureSweep(
            artifact=self.baseline.encoded, k=k, suite=suite, **kwargs
        ).run()

    def k_resilience(
        self, max_k: int = 2, prop: str = "reachability", **kwargs
    ) -> Dict[str, object]:
        """Smallest failure count breaking ``prop``, scanning k=1..max_k."""
        results: Dict[str, object] = {"property": prop, "max_k": max_k}
        for k in range(1, max_k + 1):
            report = self.failures(k=k, properties=[prop], **kwargs)
            resilience = report.k_resilience(prop)
            results[f"k={k}"] = resilience
            if any(entry["fragile"] for entry in resilience["per_class"].values()):
                results["breaking_k"] = k
                break
        else:
            results["breaking_k"] = None
        return results

    def delta(
        self,
        script: Sequence[ChangeSet],
        properties: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> DeltaReport:
        """Validate a change script against the stored baseline: zero
        baseline re-solves, stored compressions for revalidation."""
        suite = None if properties is None else PropertySuite.from_names(list(properties))
        kwargs.setdefault("executor", "serial")
        kwargs.setdefault("oracle", False)
        kwargs.setdefault("rebuild_oracle", False)
        return DeltaSweep(
            baseline=self.baseline, script=list(script), suite=suite, **kwargs
        ).run()
