"""``repro.obs`` -- the unified telemetry layer.

Two halves:

* :mod:`repro.obs.metrics` -- a process-global registry of counters,
  gauges and bounded (reservoir) histograms that absorbs the scattered
  per-cache counters, with snapshot/delta/merge so process-pool workers'
  increments survive the pool boundary;
* :mod:`repro.obs.trace` -- structured parent-linked spans with a
  ``--trace`` JSONL export, deterministic across executors.

The second observability stage builds on those:

* :mod:`repro.obs.profile` -- a span-scoped sampling profiler with
  collapsed-stack flamegraph export (``--profile``);
* :mod:`repro.obs.events` -- a schema-versioned structured event stream
  (``--events``), driving the ``--progress`` live meter and serve's
  ``/events`` long poll;
* :mod:`repro.obs.history` -- the append-only bench history behind
  ``bench history`` and its rolling-median regression check.

:func:`snapshot_run` / :func:`finish_run` bracket a sweep: the sweep
engines snapshot counters before running and call ``finish_run`` on
their report at the end, which records the peak-RSS gauge and attaches
the counter delta + trace summary to the report envelope.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import events, metrics, trace

__all__ = ["events", "metrics", "trace", "snapshot_run", "finish_run"]


def snapshot_run() -> Dict[str, float]:
    """Counter snapshot taken at the start of a sweep/run."""
    return metrics.snapshot_counters()


def finish_run(report, counters_before: Optional[Dict[str, float]] = None) -> None:
    """Stamp run-level observability onto a report envelope.

    Records the ``process.peak_rss_mb`` gauge (every report now carries
    peak RSS, not just ``--memory-budget`` runs) and attaches the
    run's counter delta, gauges and histogram summaries -- plus a trace
    summary when tracing is active -- via
    :meth:`~repro.reporting.ReportEnvelope.attach_observability`.
    """
    from repro.perfutil import peak_rss_mb

    rss = peak_rss_mb()
    if rss is not None:
        metrics.gauge("process.peak_rss_mb").max(rss)
        if getattr(report, "peak_rss_mb", None) is None and hasattr(report, "peak_rss_mb"):
            report.peak_rss_mb = round(rss, 2)

    collected = metrics.collect()
    block = {
        "counters": (
            metrics.counters_delta(counters_before)
            if counters_before is not None
            else collected["counters"]
        ),
        "gauges": collected["gauges"],
        "histograms": collected["histograms"],
    }
    trace_summary = None
    if trace.active() and trace._ROOT is not None:
        # The root span is still open; summarise what has accrued so far.
        import time as _time

        root = trace._ROOT
        root.duration_ms = (_time.perf_counter() - root._t0) * 1000.0
        trace_summary = trace.summary(root)
    attach = getattr(report, "attach_observability", None)
    if attach is not None:
        attach(metrics_block=block, trace_summary=trace_summary)
