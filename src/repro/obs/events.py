"""Structured event stream: what the pipeline is *doing*, as it does it.

Metrics say how much, traces say how long; events say *what happened,
when* -- a schema-versioned stream of typed records (sweep start/end,
per-class completion, intra-class splits, stolen units, spills,
incremental-to-scratch fallbacks, cache overflows, store loads and
refusals) that drives three consumers:

* a JSONL file (``--events PATH``) for offline inspection;
* a live progress meter (``--progress``) whose ETA comes from the
  cost model's per-class estimates shipped in the ``sweep.start`` event;
* a bounded in-memory :class:`EventLog` behind ``repro.serve``'s
  ``/events`` long-poll endpoint.

The bus is a plain subscriber list.  :func:`emit` starts with a single
truthiness check, so with no subscribers (the default) an emission site
costs one global load and one jump -- the ``obs_overhead`` gate's
budget is untouched.  Event types are dotted slugs (``class.completed``,
``store.refused``); every event carries ``seq`` (monotonic per process)
and ``ts`` (epoch seconds) assigned centrally by the bus so all
subscribers observe the same stream.

Scope: events are coordinator-side.  Worker-process emissions
(e.g. a scratch fallback inside a process-pool worker) stay in the
worker; the coordinator-side stream is identical across executors for
everything it owns -- notably per-class completions, which the parity
tests check across serial/thread/process/stealing runs.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

#: Bumped when the JSONL event format changes shape.
EVENT_SCHEMA_VERSION = 1

_SUBSCRIBERS: List[Callable[[Dict[str, object]], None]] = []
_LOCK = threading.Lock()
_SEQ = 0


def enabled() -> bool:
    """True when at least one subscriber is attached (emission sites may
    use this to skip building expensive event payloads)."""
    return bool(_SUBSCRIBERS)


def emit(etype: str, **fields: object) -> None:
    """Publish one event to every subscriber.  Near-free when nobody
    listens: one global truthiness check, no allocation."""
    if not _SUBSCRIBERS:
        return
    global _SEQ
    with _LOCK:
        _SEQ += 1
        event: Dict[str, object] = {"seq": _SEQ, "ts": round(time.time(), 6), "type": etype}
        event.update(fields)
        subscribers = list(_SUBSCRIBERS)
    for subscriber in subscribers:
        subscriber(event)


def subscribe(subscriber: Callable[[Dict[str, object]], None]) -> Callable:
    with _LOCK:
        if subscriber not in _SUBSCRIBERS:
            _SUBSCRIBERS.append(subscriber)
    return subscriber


def unsubscribe(subscriber: Callable[[Dict[str, object]], None]) -> None:
    with _LOCK:
        if subscriber in _SUBSCRIBERS:
            _SUBSCRIBERS.remove(subscriber)


def reset() -> None:
    """Drop all subscribers and restart the sequence (test isolation)."""
    global _SEQ
    with _LOCK:
        _SUBSCRIBERS.clear()
        _SEQ = 0


# -- JSONL sink ------------------------------------------------------------


class EventWriter:
    """Subscriber that appends every event as one JSON line.

    The header line is written on open, every event line is flushed
    immediately (an event file is most useful when the run died), and
    :meth:`close` unsubscribes and closes the handle.
    """

    def __init__(self, path: str, context: Optional[Dict[str, object]] = None):
        from repro.obs.jsonl import header_line

        self.path = str(path)
        self._handle = open(path, "w", encoding="utf-8")
        self._handle.write(header_line("events", EVENT_SCHEMA_VERSION, context) + "\n")
        self._handle.flush()
        self._lock = threading.Lock()
        subscribe(self)

    def __call__(self, event: Dict[str, object]) -> None:
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        unsubscribe(self)
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Validate and load ``(header, events)`` from an event file,
    refusing truncated/corrupt/mismatched files like every obs reader."""
    from repro.obs.jsonl import ObsFileError, read_records

    header, records = read_records(path, "events", EVENT_SCHEMA_VERSION)
    for record in records:
        if "type" not in record or "seq" not in record:
            raise ObsFileError(
                path, "missing_field",
                f"event record missing 'type'/'seq': {record!r:.120}",
            )
    return header, records


# -- bounded in-memory log (serve's /events) -------------------------------


def _default_buffer() -> int:
    raw = os.environ.get("REPRO_OBS_EVENT_BUFFER")
    try:
        value = int(raw) if raw else 0
    except ValueError:
        value = 0
    return value if value > 0 else 1024


class EventLog:
    """Bounded ring of recent events with a cursor-based long poll.

    Each retained event keeps its bus ``seq`` as the cursor; clients ask
    for "everything after cursor N" and block up to ``timeout`` seconds
    for fresh events.  When the ring overflows, the oldest events drop --
    a client whose cursor fell off the tail simply resumes from the
    oldest retained event (``dropped`` tells it how many it missed).
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity if capacity and capacity > 0 else _default_buffer()
        self._events: List[Dict[str, object]] = []
        self._dropped = 0
        self._cond = threading.Condition()
        subscribe(self)

    def __call__(self, event: Dict[str, object]) -> None:
        with self._cond:
            self._events.append(event)
            if len(self._events) > self.capacity:
                excess = len(self._events) - self.capacity
                del self._events[:excess]
                self._dropped += excess
            self._cond.notify_all()

    def close(self) -> None:
        unsubscribe(self)

    def latest_cursor(self) -> int:
        with self._cond:
            return int(self._events[-1]["seq"]) if self._events else 0

    def since(
        self, cursor: int = 0, timeout: float = 0.0, limit: int = 500
    ) -> Dict[str, object]:
        """Events with ``seq > cursor`` (waiting up to ``timeout`` seconds
        for at least one), the next cursor, and the drop count."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            while True:
                fresh = [e for e in self._events if int(e["seq"]) > cursor]
                if fresh or timeout <= 0:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            fresh = fresh[:limit]
            next_cursor = int(fresh[-1]["seq"]) if fresh else max(
                cursor, self.latest_cursor_locked()
            )
            return {
                "events": fresh,
                "cursor": next_cursor,
                "dropped": self._dropped,
            }

    def latest_cursor_locked(self) -> int:
        return int(self._events[-1]["seq"]) if self._events else 0


# -- live progress meter ---------------------------------------------------


class ProgressMeter:
    """Subscriber that renders a one-line live meter on ``stream``.

    ``sweep.start`` carries the planner's per-class cost estimates (warm
    ``costs.json`` numbers when available, the structural heuristic
    otherwise); completion advances the meter by *cost*, not count, so
    the ETA stays honest on skewed workloads: with an observed rate of
    ``completed_cost / elapsed``, ETA is ``remaining_cost / rate``.
    """

    def __init__(self, stream=None, min_interval: Optional[float] = None):
        self.stream = stream if stream is not None else sys.stderr
        if min_interval is None:
            raw = os.environ.get("REPRO_OBS_PROGRESS_INTERVAL")
            try:
                min_interval = float(raw) if raw else 0.1
            except ValueError:
                min_interval = 0.1
        self.min_interval = min_interval
        self._lock = threading.Lock()
        self._reset("")
        subscribe(self)

    def _reset(self, task: str) -> None:
        self.task = task
        self.total_classes = 0
        self.done_classes = 0
        self.total_cost = 0.0
        self.done_cost = 0.0
        self.costs: Dict[str, float] = {}
        self._t0 = time.monotonic()
        self._last_render = 0.0

    def __call__(self, event: Dict[str, object]) -> None:
        etype = event.get("type")
        with self._lock:
            if etype == "sweep.start":
                self._reset(str(event.get("task", "")))
                self.total_classes = int(event.get("classes") or 0)
                self.costs = {
                    str(k): float(v) for k, v in (event.get("costs") or {}).items()
                }
                self.total_cost = sum(self.costs.values()) or float(self.total_classes)
                self._render(force=True)
            elif etype == "class.completed":
                self.done_classes += 1
                self.done_cost += self.costs.get(str(event.get("cls")), 1.0)
                self._render(force=self.done_classes == self.total_classes)
            elif etype == "sweep.end":
                self._render(force=True)
                self.stream.write("\n")
                self.stream.flush()

    def _render(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        elapsed = now - self._t0
        frac = min(1.0, self.done_cost / self.total_cost) if self.total_cost else 0.0
        if self.done_cost > 0 and elapsed > 0:
            rate = self.done_cost / elapsed
            eta = max(0.0, (self.total_cost - self.done_cost) / rate)
            eta_text = f"eta {eta:5.1f}s"
        else:
            eta_text = "eta   ?  "
        width = 24
        filled = int(frac * width)
        bar = "#" * filled + "-" * (width - filled)
        self.stream.write(
            f"\r{self.task or 'sweep'} [{bar}] "
            f"{self.done_classes}/{self.total_classes or '?'} classes "
            f"{frac * 100:5.1f}% {eta_text}"
        )
        self.stream.flush()

    def close(self) -> None:
        unsubscribe(self)
