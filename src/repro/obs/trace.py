"""Structured tracing: parent-linked spans that survive process pools.

Usage::

    from repro.obs import trace
    trace.begin("compress")
    with trace.span("compress", cls="dc1"):
        ...
    root = trace.end()
    trace.write_jsonl("run.jsonl", root, context={"command": "compress"})

A span records its name, string tags, wall time and the registry
counter delta that accrued while it was open (inclusive of children;
``self_metrics`` subtracts the children's share).  When tracing is
disabled -- the default -- :func:`span` returns a shared no-op context
manager: one global check, no allocation.

**Pool propagation.**  Spans cannot cross process boundaries live, so
work units run under :func:`capture_unit`: the worker opens a detached
root span (and, in process pools, snapshots its local registry), runs
the unit, and ships the serialized span subtree + counter delta back
with the result.  The coordinator buffers the captures and attaches
them *sorted by (class index, chunk index)* at the end of the run,
merging a split class's chunk captures back into one class span --
so the final tree is bit-identical across serial, thread, process and
work-stealing executors regardless of completion order.

**File format.**  ``write_jsonl`` emits one header line
(``schema_version``/``kind``/``generated_by`` plus run context) followed
by one line per span in pre-order, each carrying a deterministic
pre-order ``id`` and its ``parent`` id -- so the (id, parent, name,
tags) skeleton of a trace file is reproducible byte for byte.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics

#: Bumped when the JSONL trace format changes shape.
TRACE_SCHEMA_VERSION = 1

_ENABLED = False
_ROOT: Optional["Span"] = None
_TLS = threading.local()

#: Every thread's live span stack, keyed by thread ident, so the sampling
#: profiler can attribute a stack sample to the deepest open span of the
#: thread it sampled.  Thread-locals are unreadable cross-thread; this
#: registry shares the *same list objects* as ``_TLS.stack``, and single
#: reads of a list under the GIL are safe without a lock.
_THREAD_STACKS: Dict[int, List["Span"]] = {}


class Span:
    """One timed, tagged node in the trace tree."""

    __slots__ = (
        "name", "tags", "duration_ms", "cpu_ms", "children", "metrics",
        "_t0", "_counters0",
    )

    def __init__(self, name: str, tags: Optional[Dict[str, object]] = None):
        self.name = name
        self.tags: Dict[str, object] = tags or {}
        self.duration_ms: float = 0.0
        #: CPU self-time credited by the sampling profiler (sample count
        #: times sampling interval); stays 0.0 when no profiler ran.
        self.cpu_ms: float = 0.0
        self.children: List[Span] = []
        #: Counter delta accrued while the span was open (inclusive).
        self.metrics: Dict[str, float] = {}
        self._t0: float = 0.0
        self._counters0: Dict[str, float] = {}

    # -- lifecycle ---------------------------------------------------------

    def _open(self) -> None:
        self._counters0 = metrics.snapshot_counters()
        self._t0 = time.perf_counter()

    def _close(self) -> None:
        self.duration_ms = (time.perf_counter() - self._t0) * 1000.0
        self.metrics = metrics.counters_delta(self._counters0)

    # -- derived views -----------------------------------------------------

    def self_ms(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.duration_ms - sum(c.duration_ms for c in self.children))

    def self_metrics(self) -> Dict[str, float]:
        """Counter delta not attributed to any child span."""
        own = dict(self.metrics)
        for child in self.children:
            for name, amount in child.metrics.items():
                remaining = own.get(name, 0) - amount
                if remaining:
                    own[name] = remaining
                else:
                    own.pop(name, None)
        return own

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "tags": self.tags,
            "dur_ms": self.duration_ms,
            "cpu_ms": self.cpu_ms,
            "metrics": self.metrics,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        span = cls(str(data["name"]), dict(data.get("tags") or {}))
        span.duration_ms = float(data.get("dur_ms") or 0.0)
        span.cpu_ms = float(data.get("cpu_ms") or 0.0)
        span.metrics = dict(data.get("metrics") or {})
        span.children = [cls.from_dict(child) for child in data.get("children") or []]
        return span

    def structure(self) -> Tuple:
        """The deterministic skeleton -- (name, sorted tags, children
        structures) -- used by the cross-executor parity tests."""
        tags = tuple(sorted((str(k), str(v)) for k, v in self.tags.items()))
        return (self.name, tags, tuple(child.structure() for child in self.children))

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


def _stack() -> List[Span]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
        _THREAD_STACKS[threading.get_ident()] = stack
    return stack


def thread_stacks() -> Dict[int, List[Span]]:
    """The live per-thread span stacks (profiler read surface)."""
    return _THREAD_STACKS


def enabled() -> bool:
    return _ENABLED


def active() -> bool:
    """True when a trace is being collected (alias of :func:`enabled`)."""
    return _ENABLED


def begin(name: str = "run", /, **tags: object) -> Span:
    """Start collecting a trace; the returned span is the tree root."""
    global _ENABLED, _ROOT
    root = Span(name, dict(tags))
    root._open()
    _ROOT = root
    _stack().clear()
    _stack().append(root)
    _ENABLED = True
    return root


def end() -> Optional[Span]:
    """Stop collecting and return the finished root span."""
    global _ENABLED, _ROOT
    root = _ROOT
    if root is not None:
        root._close()
    _ENABLED = False
    _ROOT = None
    _stack().clear()
    return root


class _SpanContext:
    """Class-based context manager (cheaper than a generator) that opens
    a child span of the current one on enter and closes it on exit."""

    __slots__ = ("_node",)

    def __init__(self, node: Span):
        self._node = node

    def __enter__(self) -> Span:
        node = self._node
        stack = _stack()
        if stack:
            stack[-1].children.append(node)
        node._open()
        stack.append(node)
        return node

    def __exit__(self, *exc) -> None:
        _stack().pop()
        self._node._close()


def span(name: str, /, **tags: object):
    """Open a child span of the current one; a shared no-op when
    tracing is disabled (one global check, no allocation)."""
    if not _ENABLED:
        return _NULL_SPAN
    return _SpanContext(Span(name, dict(tags)))


def current() -> Optional[Span]:
    stack = _stack()
    return stack[-1] if stack else None


def attach(span_dict: Dict[str, object]) -> None:
    """Graft a serialized subtree under the current span (coordinator
    side of pool propagation).  No-op when tracing is disabled."""
    if not _ENABLED:
        return
    stack = _stack()
    if stack:
        stack[-1].children.append(Span.from_dict(span_dict))


@contextmanager
def capture_unit(capture: bool, ship_metrics: bool, name: str = "class", /, **tags: object):
    """Run one work unit, capturing its span subtree and/or counter delta.

    Yields a dict the caller ships back with the unit result:
    ``{"span": <span dict or None>, "metrics": <counter delta or None>}``.
    ``capture`` turns on span collection for the unit (enabling tracing
    locally inside a pool worker whose process never saw ``begin()``);
    ``ship_metrics`` snapshots the local registry so process workers can
    send their counter increments home.  In-process executors pass
    ``ship_metrics=False`` -- they already increment the shared registry,
    and merging the delta again would double count.
    """
    global _ENABLED
    blob: Dict[str, object] = {"span": None, "metrics": None}
    if not capture and not ship_metrics:
        yield blob
        return
    counters_before = metrics.snapshot_counters() if ship_metrics else None
    root: Optional[Span] = None
    was_enabled = _ENABLED
    stack = _stack()
    depth = len(stack)
    if capture:
        root = Span(name, dict(tags))
        root._open()
        stack.append(root)
        _ENABLED = True
    try:
        yield blob
    finally:
        if capture:
            del stack[depth:]
            root._close()
            _ENABLED = was_enabled
            blob["span"] = root.to_dict()
        if ship_metrics:
            blob["metrics"] = metrics.counters_delta(counters_before)


def merge_chunk_spans(chunks: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold a split class's per-chunk captures into one class span:
    children concatenate in chunk order, durations and metrics sum --
    reproducing the span the class would have emitted unsplit."""
    if len(chunks) == 1:
        only = dict(chunks[0])
        only["tags"] = {k: v for k, v in (chunks[0].get("tags") or {}).items() if k != "chunk"}
        return only
    merged = dict(chunks[0])
    merged["tags"] = {k: v for k, v in (chunks[0].get("tags") or {}).items() if k != "chunk"}
    merged["children"] = [child for chunk in chunks for child in chunk.get("children") or []]
    merged["dur_ms"] = sum(float(chunk.get("dur_ms") or 0.0) for chunk in chunks)
    merged["cpu_ms"] = sum(float(chunk.get("cpu_ms") or 0.0) for chunk in chunks)
    totals: Dict[str, float] = {}
    for chunk in chunks:
        for key, amount in (chunk.get("metrics") or {}).items():
            totals[key] = totals.get(key, 0) + amount
    merged["metrics"] = totals
    return merged


# -- JSONL files -----------------------------------------------------------


def write_jsonl(path: str, root: Span, context: Optional[Dict[str, object]] = None) -> None:
    """One header line, then every span pre-order with deterministic ids."""
    from repro.reporting import GENERATED_BY

    header: Dict[str, object] = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "kind": "trace",
        "generated_by": GENERATED_BY,
    }
    if context:
        header.update(context)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        next_id = 0

        def emit(span: Span, parent: Optional[int]) -> None:
            nonlocal next_id
            span_id = next_id
            next_id += 1
            handle.write(json.dumps({
                "id": span_id,
                "parent": parent,
                "name": span.name,
                "tags": span.tags,
                "dur_ms": round(span.duration_ms, 3),
                "self_ms": round(span.self_ms(), 3),
                "cpu_ms": round(span.cpu_ms, 3),
                "metrics": span.metrics,
            }, sort_keys=True) + "\n")
            for child in span.children:
                emit(child, span_id)

        emit(root, None)


def read_jsonl(path: str) -> Tuple[Dict[str, object], Span]:
    """Validate and load a trace file back into (header, root span).

    Shares the paranoid posture of :mod:`repro.obs.jsonl`: truncated,
    corrupt or schema-mismatched files raise
    :class:`~repro.obs.jsonl.ObsFileError` -- never a partial tree.
    """
    from repro.obs.jsonl import ObsFileError, read_records

    header, records = read_records(path, "trace", TRACE_SCHEMA_VERSION)
    spans: Dict[int, Span] = {}
    root: Optional[Span] = None
    for record in records:
        if "name" not in record or "id" not in record:
            raise ObsFileError(
                path, "missing_field",
                f"span record missing 'id'/'name': {record!r:.120}",
            )
        span_ = Span(str(record["name"]), dict(record.get("tags") or {}))
        span_.duration_ms = float(record.get("dur_ms") or 0.0)
        span_.cpu_ms = float(record.get("cpu_ms") or 0.0)
        span_.metrics = dict(record.get("metrics") or {})
        spans[int(record["id"])] = span_
        parent = record.get("parent")
        if parent is None:
            if root is not None:
                raise ObsFileError(path, "multiple_roots", "trace file has multiple roots")
            root = span_
        else:
            if int(parent) not in spans:
                raise ObsFileError(
                    path, "dangling_parent",
                    f"span {record['id']} references unknown parent {parent}",
                )
            spans[int(parent)].children.append(span_)
    if root is None:
        raise ObsFileError(path, "no_root", "trace file has no root span")
    return header, root


# -- summaries -------------------------------------------------------------


def hotspots(root: Span, top: int = 10) -> List[Dict[str, object]]:
    """Top span names by aggregate self time (plus sampled CPU self-time
    when a profiler ran alongside the trace)."""
    totals: Dict[str, Dict[str, float]] = {}
    for node in root.walk():
        entry = totals.setdefault(
            node.name, {"count": 0, "total_ms": 0.0, "self_ms": 0.0, "cpu_ms": 0.0}
        )
        entry["count"] += 1
        entry["total_ms"] += node.duration_ms
        entry["self_ms"] += node.self_ms()
        entry["cpu_ms"] += node.cpu_ms
    ranked = sorted(totals.items(), key=lambda item: (-item[1]["self_ms"], item[0]))
    return [
        {
            "name": name,
            "count": int(entry["count"]),
            "total_ms": round(entry["total_ms"], 3),
            "self_ms": round(entry["self_ms"], 3),
            "cpu_ms": round(entry["cpu_ms"], 3),
        }
        for name, entry in ranked[:top]
    ]


def summary(root: Span, top: int = 10) -> Dict[str, object]:
    """The compact block embedded in report envelopes."""
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "root": root.name,
        "total_ms": round(root.duration_ms, 3),
        "span_count": sum(1 for _ in root.walk()),
        "hotspots": hotspots(root, top),
    }


def tree_lines(root: Span, max_depth: int = 4, max_children: int = 8) -> List[str]:
    """A human-readable span tree for ``trace summarize``."""
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items(), key=lambda kv: str(kv[0])))
        label = f"{span.name}" + (f" [{tags}]" if tags else "")
        cpu = f", cpu {span.cpu_ms:.1f}ms" if span.cpu_ms else ""
        lines.append(
            f"{'  ' * depth}{label}  {span.duration_ms:.1f}ms"
            f" (self {span.self_ms():.1f}ms{cpu})"
        )
        if depth + 1 > max_depth:
            if span.children:
                lines.append(f"{'  ' * (depth + 1)}... {len(span.children)} children elided")
            return
        for index, child in enumerate(span.children):
            if index >= max_children:
                lines.append(f"{'  ' * (depth + 1)}... {len(span.children) - index} more")
                break
            render(child, depth + 1)

    render(root, 0)
    return lines
