"""Append-only bench history: performance trajectory across runs.

Each ``BENCH_*.json`` baseline is a single frozen point; the history is
the *curve*.  Every benchmark run appends one self-describing record
(schema version, timestamp, git sha, per-stage timings, peak RSS, key
counters) to ``BENCH_HISTORY.jsonl``; ``repro.pipeline bench history``
prints per-stage trend lines and runs a rolling-median regression
check: the latest run of each stage is compared against the median of
the preceding *window* runs, with the same relative-plus-absolute slack
posture as the frozen-baseline gates.  The median makes the reference
robust to one noisy CI machine; the window makes it track legitimate
drift instead of pinning to a stale baseline forever.

Unlike the header-per-file trace/event/profile formats, the history is
append-only across processes and commits, so *every record* carries the
schema version and kind; the reader refuses the whole file on any
truncated tail, corrupt line or schema mismatch -- same posture as
:mod:`repro.obs.jsonl`, never a silently partial history.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, List, Optional, Tuple

#: Bumped when the history record format changes shape.
HISTORY_SCHEMA_VERSION = 1

#: Default history file, next to the frozen BENCH_*.json baselines.
DEFAULT_PATH = "BENCH_HISTORY.jsonl"

#: Absolute per-stage slack (seconds) on top of the relative bound --
#: sub-hundredth-of-a-second stages jitter across machines.
ABSOLUTE_SLACK_SECONDS = 0.02


def git_sha() -> Optional[str]:
    """The current commit sha, or None outside a repo (advisory only)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def make_record(
    bench: str,
    stages: Dict[str, float],
    *,
    counters: Optional[Dict[str, float]] = None,
    peak_rss_mb: Optional[float] = None,
    meta: Optional[Dict[str, object]] = None,
    timestamp: Optional[float] = None,
    sha: Optional[str] = None,
) -> Dict[str, object]:
    record: Dict[str, object] = {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "kind": "bench_history",
        "bench": str(bench),
        "ts": round(timestamp if timestamp is not None else time.time(), 3),
        "git_sha": sha if sha is not None else git_sha(),
        "stages": {str(k): round(float(v), 6) for k, v in stages.items()},
    }
    if counters:
        record["counters"] = {str(k): float(v) for k, v in counters.items()}
    if peak_rss_mb is not None:
        record["peak_rss_mb"] = round(float(peak_rss_mb), 3)
    if meta:
        record["meta"] = dict(meta)
    return record


def append_record(path: str, record: Dict[str, object]) -> Dict[str, object]:
    """Append one record line (the only write operation the store has)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def append(path: str, bench: str, stages: Dict[str, float], **kwargs) -> Dict[str, object]:
    """Build and append a record in one call (the benchmark-side API)."""
    return append_record(path, make_record(bench, stages, **kwargs))


def read_history(path: str) -> List[Dict[str, object]]:
    """Load every record, refusing the whole file on any defect."""
    from repro.obs.jsonl import ObsFileError

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        raise ObsFileError(path, "empty", "empty bench history")
    if not text.endswith("\n"):
        raise ObsFileError(
            path, "truncated",
            "bench history does not end with a newline (truncated write?)",
        )
    records: List[Dict[str, object]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsFileError(
                path, "corrupt_json",
                f"line {lineno} is not valid JSON ({exc.msg})",
            ) from exc
        if not isinstance(record, dict) or record.get("kind") != "bench_history":
            raise ObsFileError(
                path, "wrong_kind",
                f"line {lineno} is not a bench_history record",
            )
        if record.get("schema_version") != HISTORY_SCHEMA_VERSION:
            raise ObsFileError(
                path, "schema_mismatch",
                f"line {lineno}: history schema "
                f"{record.get('schema_version')!r}, expected {HISTORY_SCHEMA_VERSION}",
            )
        if "bench" not in record or not isinstance(record.get("stages"), dict):
            raise ObsFileError(
                path, "missing_field",
                f"line {lineno}: record missing 'bench'/'stages'",
            )
        records.append(record)
    return records


# -- analysis --------------------------------------------------------------


def stage_series(
    records: List[Dict[str, object]], bench: Optional[str] = None
) -> Dict[str, Dict[str, List[float]]]:
    """``bench -> stage -> [seconds...]`` in append (chronological) order."""
    series: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        name = str(record["bench"])
        if bench is not None and name != bench:
            continue
        stages = series.setdefault(name, {})
        for stage, seconds in record["stages"].items():
            stages.setdefault(str(stage), []).append(float(seconds))
    return series


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def regression_check(
    records: List[Dict[str, object]],
    *,
    window: int = 5,
    max_regression: float = 0.25,
    absolute_slack: float = ABSOLUTE_SLACK_SECONDS,
) -> Tuple[bool, List[Dict[str, object]]]:
    """Latest run of every stage vs the rolling median of its history.

    For each ``(bench, stage)`` with at least two runs, the latest
    timing is compared against the median of up to ``window`` preceding
    runs; it regresses when it exceeds
    ``median * (1 + max_regression) + absolute_slack``.  Returns
    ``(ok, findings)`` where findings cover every checked stage (so the
    caller can print the healthy ones too).
    """
    findings: List[Dict[str, object]] = []
    ok = True
    for bench, stages in sorted(stage_series(records).items()):
        for stage, values in sorted(stages.items()):
            if len(values) < 2:
                continue
            latest = values[-1]
            reference = values[-1 - window:-1]
            median = _median(reference)
            bound = median * (1.0 + max_regression) + absolute_slack
            regressed = latest > bound
            if regressed:
                ok = False
            findings.append({
                "bench": bench,
                "stage": stage,
                "latest": round(latest, 6),
                "median": round(median, 6),
                "bound": round(bound, 6),
                "runs": len(values),
                "window": len(reference),
                "regressed": regressed,
            })
    return ok, findings


def trend_lines(
    records: List[Dict[str, object]],
    bench: Optional[str] = None,
    width: int = 24,
) -> List[str]:
    """Per-stage ASCII trend lines: each run scaled against the stage max."""
    marks = " .:-=+*#%@"
    lines: List[str] = []
    for name, stages in sorted(stage_series(records, bench).items()):
        lines.append(f"{name}:")
        for stage, values in sorted(stages.items()):
            tail = values[-width:]
            top = max(tail) or 1.0
            spark = "".join(
                marks[min(len(marks) - 1, int(v / top * (len(marks) - 1) + 0.5))]
                for v in tail
            )
            lines.append(
                f"  {stage:<28} [{spark:<{width}}] "
                f"last {tail[-1] * 1000:8.1f}ms  median {_median(tail) * 1000:8.1f}ms  "
                f"n={len(values)}"
            )
    return lines


def default_history_path(explicit: Optional[str] = None) -> str:
    """The history file path: explicit flag, ``REPRO_OBS_HISTORY``, or
    ``BENCH_HISTORY.jsonl`` in the current directory."""
    if explicit:
        return explicit
    return os.environ.get("REPRO_OBS_HISTORY") or DEFAULT_PATH
