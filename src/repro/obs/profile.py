"""Span-scoped sampling profiler with collapsed-stack flamegraph export.

A background daemon thread samples every live Python frame stack via
``sys._current_frames()`` at a fixed interval (default 5 ms, overridable
with ``REPRO_OBS_PROFILE_INTERVAL_MS``).  Each sample is attributed to
the deepest *trace span* open on the sampled thread (read from
:func:`repro.obs.trace.thread_stacks`), so the profile answers "which
code is hot *inside* which span" rather than just "which code is hot":

* every unique ``(span path, frame stack)`` pair accumulates a sample
  count -- exported in the standard collapsed-stack ``folded`` format
  (``span;frame;frame count``) that flamegraph tooling consumes
  directly;
* every sample credits ``interval_ms`` of CPU self-time to the deepest
  open span (``Span.cpu_ms``), which ``trace summarize --top`` reports
  alongside wall self-time.

Scope and overhead: only threads of the *coordinator* process are
sampled -- process-pool workers live in other interpreters and ship
span subtrees, not frames.  When profiling is off the pipelines hold a
:class:`NullProfiler` (no thread, every method a no-op), so the
``obs_overhead`` gate is untouched.

Stack reads are GIL-atomic snapshots; a sample may occasionally land on
a span in the instant it closes, which at worst credits one interval to
a just-finished span -- noise far below the sampling resolution.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from typing import Dict, List, Optional, Tuple

#: Bumped when the profile JSONL format changes shape.
PROFILE_SCHEMA_VERSION = 1

#: Default sampling interval; ~200 Hz keeps overhead well under a
#: percent while resolving millisecond-scale spans.
DEFAULT_INTERVAL_MS = 5.0

#: Span-path label for samples taken while no trace span was open.
NO_SPAN = "<no-span>"


def default_interval_ms() -> float:
    """The sampling interval, honouring ``REPRO_OBS_PROFILE_INTERVAL_MS``."""
    raw = os.environ.get("REPRO_OBS_PROFILE_INTERVAL_MS")
    if not raw:
        return DEFAULT_INTERVAL_MS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL_MS
    return value if value > 0 else DEFAULT_INTERVAL_MS


def _frame_label(frame) -> str:
    """``file.qualname`` -- short, stable, flamegraph-friendly."""
    code = frame.f_code
    filename = os.path.basename(code.co_filename)
    if filename.endswith(".py"):
        filename = filename[:-3]
    name = getattr(code, "co_qualname", code.co_name)
    return f"{filename}.{name}"


class SamplingProfiler:
    """The live profiler; ``start()`` spawns the sampler thread."""

    def __init__(self, interval_ms: Optional[float] = None):
        self.interval_ms = float(interval_ms if interval_ms is not None else default_interval_ms())
        #: (span path, frame labels root->leaf) -> sample count.
        self.samples: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self.sample_count = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def active(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------

    def _run(self) -> None:
        from repro.obs import trace

        interval_s = self.interval_ms / 1000.0
        own_ident = threading.get_ident()
        while not self._stop.wait(interval_s):
            frames = sys._current_frames()
            stacks = trace.thread_stacks()
            with self._lock:
                for ident, frame in frames.items():
                    if ident == own_ident:
                        continue
                    span_stack = stacks.get(ident)
                    if span_stack:
                        span = span_stack[-1]
                        span.cpu_ms += self.interval_ms
                        span_path = ";".join(s.name for s in span_stack)
                    else:
                        span_path = NO_SPAN
                    labels: List[str] = []
                    while frame is not None:
                        labels.append(_frame_label(frame))
                        frame = frame.f_back
                    labels.reverse()
                    key = (span_path, tuple(labels))
                    self.samples[key] = self.samples.get(key, 0) + 1
                    self.sample_count += 1

    # -- export ------------------------------------------------------------

    def records(self) -> List[Dict[str, object]]:
        """One record per unique (span path, stack), deterministic order."""
        with self._lock:
            items = sorted(self.samples.items())
        return [
            {"span": span_path, "stack": list(stack), "count": count}
            for (span_path, stack), count in items
        ]

    def folded(self) -> List[str]:
        """Collapsed-stack lines: ``span;frame;frame count``."""
        return folded_lines(self.records())


class NullProfiler:
    """No-op stand-in when profiling is disabled: no thread, no state."""

    interval_ms = 0.0
    sample_count = 0

    def active(self) -> bool:
        return False

    def start(self) -> "NullProfiler":
        return self

    def stop(self) -> "NullProfiler":
        return self

    def __enter__(self) -> "NullProfiler":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def records(self) -> List[Dict[str, object]]:
        return []

    def folded(self) -> List[str]:
        return []


def folded_lines(records: List[Dict[str, object]]) -> List[str]:
    """Render profile records in the collapsed-stack ``folded`` format
    flamegraph tools consume: semicolon-joined frames, space, count."""
    lines: List[str] = []
    for record in records:
        frames = [str(record.get("span") or NO_SPAN)]
        frames.extend(str(label) for label in record.get("stack") or [])
        lines.append(f"{';'.join(frames)} {int(record['count'])}")
    return lines


# -- JSONL files -----------------------------------------------------------


def write_jsonl(
    path: str,
    profiler: "SamplingProfiler | NullProfiler",
    context: Optional[Dict[str, object]] = None,
) -> None:
    """Header line plus one line per unique sampled stack."""
    from repro.obs.jsonl import header_line

    extra: Dict[str, object] = {
        "interval_ms": profiler.interval_ms,
        "sample_count": profiler.sample_count,
    }
    if context:
        extra.update(context)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(header_line("profile", PROFILE_SCHEMA_VERSION, extra) + "\n")
        for record in profiler.records():
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Validate and load ``(header, stack records)`` from a profile file."""
    from repro.obs.jsonl import ObsFileError, read_records

    header, records = read_records(path, "profile", PROFILE_SCHEMA_VERSION)
    for record in records:
        if "stack" not in record or "count" not in record:
            raise ObsFileError(
                path, "missing_field",
                f"profile record missing 'stack'/'count': {record!r:.120}",
            )
    return header, records


def summary(records: List[Dict[str, object]], top: int = 10) -> List[Dict[str, object]]:
    """Top leaf frames by sample count (the profile's hotspot view)."""
    leaves: Dict[str, int] = {}
    for record in records:
        stack = record.get("stack") or []
        leaf = str(stack[-1]) if stack else NO_SPAN
        leaves[leaf] = leaves.get(leaf, 0) + int(record["count"])
    ranked = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))
    return [{"frame": frame, "samples": count} for frame, count in ranked[:top]]
