"""Process-global metrics registry: counters, gauges, bounded histograms.

Before this module, instrumentation was scattered across five ad-hoc
``cache_info()`` dicts, the solver's ``COUNTERS`` and ``serve``'s private
``QueryStats`` -- none of which survived process-pool workers or showed
up in reports.  The registry unifies them behind one namespace::

    from repro.obs import metrics
    metrics.counter("srp.scratch_solves").inc()
    metrics.histogram("serve.latency.verify").observe(seconds)

Design constraints, in order:

* **Near-zero overhead when disabled.**  ``disable()`` makes every
  lookup return a shared null instrument whose ``inc``/``set``/
  ``observe`` are empty methods; the enabled path is one dict lookup
  plus an attribute add.  Callers keep their fast local counters in hot
  loops and *absorb* deltas into the registry at coarse boundaries (per
  solve, per compress, per query) -- the registry is an aggregation
  point, not an inner-loop primitive.
* **Pool-safe by snapshot/delta/merge.**  Process workers increment
  their own (fresh) registry; :func:`snapshot_counters` before a work
  unit and :func:`counters_delta` after yield a plain dict that ships
  back with the result, and the coordinator folds it in with
  :func:`merge_counters`.  The same mechanism gives trace spans their
  per-span metric deltas.
* **Bounded memory.**  Histograms keep exact ``count``/``sum``/``min``/
  ``max`` plus a fixed-size reservoir (Vitter's Algorithm R) for
  percentiles, so a histogram fed forever stays O(reservoir).  The
  reservoir RNG is seeded from the metric *name* (via ``zlib.crc32``,
  not ``hash()`` which varies with PYTHONHASHSEED), so a given sequence
  of observations reproduces bit-identically across runs.
"""

from __future__ import annotations

import random
import re
import threading
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Default reservoir size for bounded histograms; large enough that
#: p99 over it is stable, small enough to be free (1k floats).
DEFAULT_RESERVOIR = 1024


class Counter:
    """A monotonically increasing count (float-valued for byte sums)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (peak RSS, cache sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (peak tracking)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Bounded-memory distribution: exact count/sum/min/max, reservoir
    percentiles.  Thread-safe (``observe`` under a lock -- it is called
    at query/class frequency, never in inner loops)."""

    __slots__ = ("name", "count", "sum", "min", "max", "_reservoir", "_rng", "_lock", "_size")

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._size = reservoir
        self._reservoir: List[float] = []
        # crc32, not hash(): stable across processes and PYTHONHASHSEED.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._reservoir) < self._size:
                self._reservoir.append(value)
            else:
                # Algorithm R: keep each of the n observations with
                # probability size/n.
                slot = self._rng.randrange(self.count)
                if slot < self._size:
                    self._reservoir[slot] = value

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile (``q`` in [0, 100]) over the reservoir."""
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return None
        rank = max(0, min(len(sample) - 1, int(round(q / 100.0 * (len(sample) - 1)))))
        return sample[rank]

    def summary(self) -> Dict[str, object]:
        with self._lock:
            sample = sorted(self._reservoir)
            count, total = self.count, self.sum
            lo, hi = self.min, self.max

        def pct(q: float) -> Optional[float]:
            if not sample:
                return None
            rank = max(0, min(len(sample) - 1, int(round(q / 100.0 * (len(sample) - 1)))))
            return sample[rank]

        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": (total / count) if count else None,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram used while disabled."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    """A named family of counters/gauges/histograms.

    One process-global instance (:data:`REGISTRY`) backs the module-level
    convenience functions; ``serve`` additionally keeps a private
    per-service registry so its lifetime counts reset with the service,
    not the process.
    """

    def __init__(self, enabled: bool = True):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._enabled = enabled
        self._lock = threading.Lock()

    # -- instrument lookup -------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self._enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self._enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str, reservoir: int = DEFAULT_RESERVOIR) -> Histogram:
        if not self._enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(name, reservoir))
        return instrument

    # -- lifecycle ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        """Make every instrument lookup return the shared null object.
        Existing instruments keep their values; new updates are dropped."""
        self._enabled = False

    def reset(self) -> None:
        """Drop every instrument (tests and pool workers)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- snapshot / delta / merge (pool + span propagation) ----------------

    def snapshot_counters(self) -> Dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def counters_delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """Counter increments since ``before`` (only non-zero entries)."""
        delta: Dict[str, float] = {}
        for name, instrument in list(self._counters.items()):
            change = instrument.value - before.get(name, 0)
            if change:
                delta[name] = change
        return delta

    def merge_counters(self, delta: Dict[str, float]) -> None:
        """Fold a worker's counter delta into this registry."""
        for name, amount in delta.items():
            self.counter(name).inc(amount)

    # -- export ------------------------------------------------------------

    def collect(self) -> Dict[str, object]:
        """Everything, as plain JSON-ready dicts (for /stats and report
        envelopes)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(self._histograms.items())},
        }


#: The process-global registry behind the module-level helpers.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, reservoir: int = DEFAULT_RESERVOIR) -> Histogram:
    return REGISTRY.histogram(name, reservoir)


def enable() -> None:
    REGISTRY.enable()


def disable() -> None:
    REGISTRY.disable()


def reset() -> None:
    REGISTRY.reset()


def enabled() -> bool:
    return REGISTRY.enabled


def snapshot_counters() -> Dict[str, float]:
    return REGISTRY.snapshot_counters()


def counters_delta(before: Dict[str, float]) -> Dict[str, float]:
    return REGISTRY.counters_delta(before)


def merge_counters(delta: Dict[str, float]) -> None:
    REGISTRY.merge_counters(delta)


def collect() -> Dict[str, object]:
    return REGISTRY.collect()


# -- Prometheus text exposition -------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """``srp.transfer_cache.hits`` -> ``repro_srp_transfer_cache_hits``."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def render_prometheus(registries: Iterable[MetricsRegistry], prefix: str = "repro") -> str:
    """The registries' instruments in Prometheus text exposition format.

    Later registries win on name collisions (the serve registry overlays
    the global one).  Histograms render as summaries: ``{quantile=...}``
    series plus ``_count`` and ``_sum``.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    for registry in registries:
        for name, c in registry._counters.items():
            counters[name] = counters.get(name, 0) + c.value
        for name, g in registry._gauges.items():
            gauges[name] = g.value
        for name, h in registry._histograms.items():
            histograms[name] = h

    lines: List[str] = []

    def fmt(value: float) -> str:
        return repr(float(value)) if isinstance(value, float) and not value.is_integer() else str(int(value))

    for name in sorted(counters):
        metric = prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {fmt(counters[name])}")
    for name in sorted(gauges):
        metric = prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {fmt(gauges[name])}")
    for name in sorted(histograms):
        metric = prometheus_name(name, prefix)
        summary = histograms[name].summary()
        lines.append(f"# TYPE {metric} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            value = summary[key]
            if value is not None:
                lines.append(f'{metric}{{quantile="{q}"}} {float(value)!r}')
        lines.append(f"{metric}_count {summary['count']}")
        lines.append(f"{metric}_sum {float(summary['sum'])!r}")
    return "\n".join(lines) + "\n"


def absorb_cache_info(prefix: str, before: Optional[Dict[str, int]], after: Optional[Dict[str, int]],
                      keys: Tuple[str, ...] = ("hits", "misses", "overflows")) -> None:
    """Fold the delta of a ``cache_info()``-style dict into counters.

    The existing caches keep fast local attribute counters in their hot
    loops; call sites snapshot ``cache_info()`` around a coarse boundary
    and absorb the difference here, so the registry sees every hit/miss
    without touching the inner loops.
    """
    if after is None:
        return
    for key in keys:
        now = after.get(key, 0)
        delta = now - (before.get(key, 0) if before else 0)
        if delta:
            REGISTRY.counter(f"{prefix}.{key}").inc(delta)
