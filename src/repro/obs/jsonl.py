"""Shared paranoid JSONL loading for the observability file formats.

Trace, profile and event files share one shape -- a schema-versioned
header line followed by one JSON record per line -- and one loading
posture, matching the artifact store's refuse-and-rebuild stance: any
defect (truncated tail line, corrupt JSON mid-file, wrong ``kind``,
wrong ``schema_version``, empty file) raises :class:`ObsFileError`
naming the path, the line and the reason.  A reader never returns a
partial tree silently.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple


class ObsFileError(ValueError):
    """An observability JSONL file was rejected; ``reason`` is a stable
    machine-readable slug, the message carries the human detail."""

    def __init__(self, path: str, reason: str, detail: str):
        super().__init__(f"{path}: {detail} [{reason}]")
        self.path = path
        self.reason = reason


def read_records(
    path: str,
    kind: str,
    schema_version: int,
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load and validate ``(header, records)`` from a JSONL file.

    Every line must parse as a JSON object; the final line must be
    newline-terminated (a missing terminator is the signature of a
    truncated write, and the partial record it hides must not be
    half-trusted); the header must carry the expected ``kind`` and
    ``schema_version``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        raise ObsFileError(path, "empty", f"empty {kind} file")
    if not text.endswith("\n"):
        raise ObsFileError(
            path, "truncated",
            f"{kind} file does not end with a newline (truncated write?)",
        )
    records: List[Dict[str, object]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsFileError(
                path, "corrupt_json",
                f"line {lineno} is not valid JSON ({exc.msg})",
            ) from exc
        if not isinstance(record, dict):
            raise ObsFileError(
                path, "not_an_object",
                f"line {lineno} is a {type(record).__name__}, expected an object",
            )
        records.append(record)
    header = records[0]
    if header.get("kind") != kind:
        raise ObsFileError(
            path, "wrong_kind",
            f"not a {kind} file (kind={header.get('kind')!r})",
        )
    if header.get("schema_version") != schema_version:
        raise ObsFileError(
            path, "schema_mismatch",
            f"{kind} schema {header.get('schema_version')!r}, "
            f"expected {schema_version}",
        )
    return header, records[1:]


def header_line(kind: str, schema_version: int, context: Dict[str, object] | None = None) -> str:
    """The serialized header line every obs JSONL file starts with."""
    from repro.reporting import GENERATED_BY

    header: Dict[str, object] = {
        "schema_version": schema_version,
        "kind": kind,
        "generated_by": GENERATED_BY,
    }
    if context:
        header.update(context)
    return json.dumps(header, sort_keys=True)
