"""Generic protocol interface used to build SRP instances (§3).

The paper factors every routing protocol into two generic parts:

1. a *comparison relation* ``≺`` that prefers certain attributes, and
2. a *transfer function* that transforms messages along edges.

A :class:`Protocol` bundles the comparison relation, the destination's
initial attribute, and a way to construct per-edge transfer functions.  The
SRP machinery in :mod:`repro.srp` is written purely against this interface,
so adding a protocol does not require touching the solver or the
abstraction algorithm.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional, Tuple

from repro.topology.graph import Edge, Node

Attribute = Any
TransferFn = Callable[[Edge, Optional[Attribute]], Optional[Attribute]]


class Protocol(abc.ABC):
    """Abstract base for routing-protocol models.

    Subclasses provide the protocol name, the initial attribute announced
    by the destination, the strict preference relation, and a factory for
    per-edge transfer functions.
    """

    #: Short protocol identifier (e.g. ``"rip"``, ``"bgp"``).
    name: str = "abstract"

    @abc.abstractmethod
    def initial_attribute(self, destination: Node) -> Attribute:
        """The attribute ``ad`` the destination announces for itself."""

    @abc.abstractmethod
    def prefer(self, a: Attribute, b: Attribute) -> bool:
        """True iff ``a`` is *strictly* preferred to ``b`` (the paper's ``a ≺ b``)."""

    @abc.abstractmethod
    def default_transfer(self, edge: Edge, attribute: Optional[Attribute]) -> Optional[Attribute]:
        """The protocol's built-in transfer along ``edge`` with no extra policy.

        ``edge`` is ``(u, v)`` and ``attribute`` is the label of the
        *neighbour* ``v``; the result is the attribute as received at ``u``
        (or ``None`` when the route is dropped).
        """

    # ------------------------------------------------------------------
    # Derived comparisons
    # ------------------------------------------------------------------
    def equally_preferred(self, a: Attribute, b: Attribute) -> bool:
        """The paper's ``a ≈ b``: neither attribute is strictly preferred."""
        return not self.prefer(a, b) and not self.prefer(b, a)

    def best(self, attributes) -> Optional[Attribute]:
        """A minimal element of ``attributes`` under ``≺`` (ties broken by
        deterministic ordering of the remaining candidates), or ``None`` for
        an empty collection."""
        best: Optional[Attribute] = None
        for attr in attributes:
            if best is None or self.prefer(attr, best):
                best = attr
        return best

    # ------------------------------------------------------------------
    # Attribute abstraction (the paper's ``h``)
    # ------------------------------------------------------------------
    def abstract_attribute(
        self, attribute: Optional[Attribute], node_map: Callable[[Node], Node]
    ) -> Optional[Attribute]:
        """Apply the attribute abstraction ``h`` induced by a node map ``f``.

        For most protocols ``h`` is the identity; path-vector protocols
        override this to map the AS path through ``f``.  ``None`` always
        maps to ``None`` (drop-equivalence).
        """
        if attribute is None:
            return None
        return attribute

    # ------------------------------------------------------------------
    # Hooks used by the compression algorithm
    # ------------------------------------------------------------------
    def local_preferences(self, transfer_summary: Any) -> Tuple[int, ...]:
        """The set of local-preference values a node's policy may assign.

        Only meaningful for BGP (used to bound the number of behaviours per
        abstract node, Theorem 4.4); other protocols report a single value,
        meaning no BGP-style case splitting is needed.
        """
        return (0,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
