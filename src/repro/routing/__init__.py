"""Routing protocol models: RIP, OSPF, BGP, static routes and multi-protocol."""

from repro.routing.attributes import (
    ADMIN_DISTANCE,
    DEFAULT_LOCAL_PREF,
    NO_ROUTE,
    BgpAttribute,
    OspfAttribute,
    RibAttribute,
    RipAttribute,
    StaticAttribute,
)
from repro.routing.protocol import Protocol
from repro.routing.rip import RipProtocol, build_rip_srp
from repro.routing.ospf import OspfProtocol, build_ospf_srp
from repro.routing.static import StaticProtocol, build_static_srp
from repro.routing.bgp import (
    AddCommunity,
    AllowAll,
    BgpPolicy,
    BgpProtocol,
    Chain,
    DenyAll,
    FilterCommunity,
    PrependAs,
    RemoveCommunity,
    SetLocalPref,
    build_bgp_srp,
    chain,
    policy_local_prefs,
)
from repro.routing.multiprotocol import (
    MultiProtocol,
    MultiProtocolConfig,
    build_multiprotocol_srp,
)

__all__ = [
    "ADMIN_DISTANCE",
    "DEFAULT_LOCAL_PREF",
    "NO_ROUTE",
    "BgpAttribute",
    "OspfAttribute",
    "RibAttribute",
    "RipAttribute",
    "StaticAttribute",
    "Protocol",
    "RipProtocol",
    "build_rip_srp",
    "OspfProtocol",
    "build_ospf_srp",
    "StaticProtocol",
    "build_static_srp",
    "AddCommunity",
    "AllowAll",
    "BgpPolicy",
    "BgpProtocol",
    "Chain",
    "DenyAll",
    "FilterCommunity",
    "PrependAs",
    "RemoveCommunity",
    "SetLocalPref",
    "build_bgp_srp",
    "chain",
    "policy_local_prefs",
    "MultiProtocol",
    "MultiProtocolConfig",
    "build_multiprotocol_srp",
]
