"""Multi-protocol networks: combining BGP, OSPF and static routes (§6).

Real devices run several protocols at once and select among them with
administrative distance; routes can also be *redistributed* from one
protocol into another.  Following the paper (and Batfish), we model this
with a product attribute :class:`~repro.routing.attributes.RibAttribute`
that tracks each protocol's best offer plus which protocol currently owns
the main RIB entry, and a transfer function that runs each protocol's
transfer side by side.

The comparison relation compares the main RIB entries: lower administrative
distance wins, then the owning protocol's own preference applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.routing.attributes import (
    ADMIN_DISTANCE,
    NO_ROUTE,
    BgpAttribute,
    RibAttribute,
    StaticAttribute,
)
from repro.routing.bgp import AllowAll, BgpPolicy, BgpProtocol
from repro.routing.ospf import DEFAULT_LINK_COST, OspfProtocol
from repro.routing.protocol import Protocol
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node


@dataclass
class MultiProtocolConfig:
    """Per-network description of which protocols run where.

    Attributes
    ----------
    bgp_edges:
        Edges on which eBGP sessions run (both directions must be listed for
        a bidirectional session).
    ospf_edges:
        Edges on which OSPF adjacencies run.
    static_edges:
        Edges carrying a static route for the destination, applied at the
        edge's first endpoint.
    bgp_import_policies / bgp_export_policies:
        Optional per-edge BGP policies (same conventions as
        :func:`repro.routing.bgp.build_bgp_srp`).
    ospf_costs:
        Optional per-edge OSPF link costs.
    redistribute_ospf_into_bgp:
        Nodes that inject their best OSPF route into BGP (route
        redistribution, §6).
    """

    bgp_edges: Set[Edge] = field(default_factory=set)
    ospf_edges: Set[Edge] = field(default_factory=set)
    static_edges: Set[Edge] = field(default_factory=set)
    bgp_import_policies: Dict[Edge, BgpPolicy] = field(default_factory=dict)
    bgp_export_policies: Dict[Edge, BgpPolicy] = field(default_factory=dict)
    ospf_costs: Dict[Edge, int] = field(default_factory=dict)
    redistribute_ospf_into_bgp: Set[Node] = field(default_factory=set)


class MultiProtocol(Protocol):
    """Product protocol selecting among BGP, OSPF and static by admin distance."""

    name = "multi"

    def __init__(self) -> None:
        self._bgp = BgpProtocol()
        self._ospf = OspfProtocol()

    def initial_attribute(self, destination: Node) -> RibAttribute:
        return RibAttribute(
            bgp=self._bgp.initial_attribute(destination),
            ospf=self._ospf.initial_attribute(destination),
            static=None,
            chosen="ebgp",
        )

    def prefer(self, a: RibAttribute, b: RibAttribute) -> bool:
        """Compare the main RIB entries of two product attributes.

        Every ``RibAttribute`` built by the transfer functions carries its
        best protocol in ``chosen`` (the constructors enforce the
        invariant ``chosen == best_protocol()``), so the admin-distance
        winner only needs recomputing for hand-built attributes.
        """
        pa = a.chosen if a.chosen is not None else a.best_protocol()
        pb = b.chosen if b.chosen is not None else b.best_protocol()
        if pa is None or pb is None:
            return pb is None and pa is not None
        da, db = ADMIN_DISTANCE[pa], ADMIN_DISTANCE[pb]
        if da != db:
            return da < db
        if pa == "ebgp" and a.bgp is not None and b.bgp is not None:
            return self._bgp.prefer(a.bgp, b.bgp)
        if pa == "ospf" and a.ospf is not None and b.ospf is not None:
            return self._ospf.prefer(a.ospf, b.ospf)
        return False

    def default_transfer(self, edge: Edge, attribute: Optional[RibAttribute]):
        raise NotImplementedError("use build_multiprotocol_srp to obtain transfer functions")

    def abstract_attribute(self, attribute, node_map):
        if attribute is None:
            return None
        return RibAttribute(
            bgp=self._bgp.abstract_attribute(attribute.bgp, node_map),
            ospf=attribute.ospf,
            static=attribute.static,
            chosen=attribute.chosen,
        )


def build_multiprotocol_srp(
    graph: Graph,
    destination: Node,
    config: MultiProtocolConfig,
) -> SRP:
    """Construct the SRP for a network running BGP, OSPF and static routes."""
    protocol = MultiProtocol()
    allow = AllowAll()

    def transfer(edge: Edge, attribute: Optional[RibAttribute]) -> Optional[RibAttribute]:
        receiver, sender = edge

        # --- static: does not depend on the neighbour at all -------------
        static_attr = StaticAttribute() if edge in config.static_edges else None

        bgp_attr = None
        ospf_attr = None
        if attribute is not None:
            # --- OSPF ------------------------------------------------------
            if edge in config.ospf_edges and attribute.ospf is not None:
                cost = config.ospf_costs.get(edge, DEFAULT_LINK_COST)
                if attribute.chosen in ("ospf", "ebgp", "static") or attribute.chosen is None:
                    ospf_attr = attribute.ospf.with_added_cost(cost)

            # --- BGP -------------------------------------------------------
            if edge in config.bgp_edges:
                # Redistribution: a neighbour whose best route is OSPF can
                # still originate a BGP announcement if redistribution is on.
                neighbour_bgp = attribute.bgp
                if neighbour_bgp is None and sender in config.redistribute_ospf_into_bgp \
                        and attribute.ospf is not None:
                    neighbour_bgp = BgpAttribute()
                if neighbour_bgp is not None:
                    outgoing = config.bgp_export_policies.get(edge, allow).apply(neighbour_bgp)
                    if outgoing is not None and not outgoing.contains_as(str(receiver)):
                        outgoing = outgoing.prepended(str(sender))
                        bgp_attr = config.bgp_import_policies.get(edge, allow).apply(outgoing)

        if static_attr is None and bgp_attr is None and ospf_attr is None:
            return NO_ROUTE
        result = RibAttribute(bgp=bgp_attr, ospf=ospf_attr, static=static_attr)
        return RibAttribute(
            bgp=bgp_attr, ospf=ospf_attr, static=static_attr, chosen=result.best_protocol()
        )

    edge_policies: Dict[Edge, object] = {}
    for edge in graph.edges:
        edge_policies[edge] = (
            "multi",
            edge in config.bgp_edges,
            edge in config.ospf_edges,
            edge in config.static_edges,
            config.ospf_costs.get(edge, DEFAULT_LINK_COST),
            config.bgp_export_policies.get(edge, allow),
            config.bgp_import_policies.get(edge, allow),
        )

    node_prefs: Dict[Node, tuple] = {}
    from repro.routing.bgp import policy_local_prefs
    from repro.routing.attributes import DEFAULT_LOCAL_PREF

    for node in graph.nodes:
        prefs = {DEFAULT_LOCAL_PREF}
        for edge in graph.out_edges(node):
            prefs |= policy_local_prefs(config.bgp_import_policies.get(edge, allow))
        node_prefs[node] = tuple(sorted(prefs))

    return SRP(
        graph=graph,
        destination=destination,
        initial=protocol.initial_attribute(destination),
        prefer=protocol.prefer,
        transfer=transfer,
        protocol=protocol,
        edge_policies=edge_policies,
        node_prefs=node_prefs,
    )
