"""Routing-message attributes for the protocols modelled in the paper (§3.2).

Each routing protocol exchanges messages whose contents the paper calls
*attributes*.  A missing route is represented with ``None`` (the paper's
``⊥``), so every attribute class here represents a *present* route.

Attribute classes are immutable (frozen dataclasses) and hashable so that
they can be stored in sets, used as dictionary keys, and compared
structurally in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

#: The paper's ``⊥`` -- absence of a route.  We use ``None`` throughout.
NO_ROUTE = None


@dataclass(frozen=True, order=True)
class RipAttribute:
    """A RIP route: just a hop count in ``[0, 15]`` (16 means unreachable)."""

    hops: int

    #: RIP's maximum usable metric; routes beyond this are dropped.
    MAX_HOPS = 15

    def __post_init__(self) -> None:
        if self.hops < 0:
            raise ValueError("RIP hop count cannot be negative")

    def incremented(self) -> Optional["RipAttribute"]:
        """The attribute after traversing one more hop, or ``None`` if the
        hop-count limit is exceeded (RIP's infinity)."""
        if self.hops + 1 > self.MAX_HOPS:
            return NO_ROUTE
        return RipAttribute(self.hops + 1)


@dataclass(frozen=True)
class OspfAttribute:
    """An OSPF route: accumulated path cost plus an intra/inter-area flag.

    The paper models multi-area OSPF with attributes that are tuples of the
    path cost and a boolean marking inter-area routes; intra-area routes are
    preferred regardless of cost.
    """

    cost: int
    inter_area: bool = False
    area: int = 0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("OSPF cost cannot be negative")

    def with_added_cost(self, link_cost: int) -> "OspfAttribute":
        """The attribute after traversing a link of the given cost."""
        if link_cost < 0:
            raise ValueError("link cost cannot be negative")
        return replace(self, cost=self.cost + link_cost)

    def crossing_area(self, new_area: int) -> "OspfAttribute":
        """The attribute after crossing into a different OSPF area."""
        return replace(self, inter_area=True, area=new_area)


#: Default BGP local preference when no policy sets one.
DEFAULT_LOCAL_PREF = 100


@dataclass(frozen=True)
class BgpAttribute:
    """A BGP route announcement.

    Follows the paper's model ``A = N x 2^N x list(V)``: a local-preference
    value, a set of community tags, and the AS path (a tuple of node names,
    most recent AS first).  Additional fields (MED, origin) exist on real
    announcements but, as in the paper, are omitted because they do not
    change the abstraction theory.
    """

    local_pref: int = DEFAULT_LOCAL_PREF
    communities: FrozenSet[str] = field(default_factory=frozenset)
    as_path: Tuple[str, ...] = ()
    #: Whether this route was learned over an iBGP session.  Real BGP
    #: prefers eBGP-learned over iBGP-learned routes (decision step after
    #: the AS-path length comparison); without this step, two route
    #: reflectors that learn a destination both directly (eBGP) and from
    #: each other (iBGP) tie and "forward" into a transient two-node cycle.
    ibgp_learned: bool = False

    def __post_init__(self) -> None:
        if self.local_pref < 0:
            raise ValueError("local preference cannot be negative")

    @property
    def path_length(self) -> int:
        return len(self.as_path)

    def has_community(self, community: str) -> bool:
        return community in self.communities

    def with_community(self, community: str) -> "BgpAttribute":
        """A copy with ``community`` added (BGP ``set community additive``)."""
        return replace(self, communities=self.communities | {community})

    def without_community(self, community: str) -> "BgpAttribute":
        """A copy with ``community`` removed (``set comm-list delete``)."""
        return replace(self, communities=self.communities - {community})

    def with_local_pref(self, local_pref: int) -> "BgpAttribute":
        """A copy with the local preference replaced."""
        return replace(self, local_pref=local_pref)

    def prepended(self, asn: str) -> "BgpAttribute":
        """A copy with ``asn`` prepended to the AS path (eBGP route export);
        the receiver learns it over eBGP, so the iBGP mark is cleared."""
        return BgpAttribute(
            local_pref=self.local_pref,
            communities=self.communities,
            as_path=(asn,) + self.as_path,
            ibgp_learned=False,
        )

    def via_ibgp(self) -> "BgpAttribute":
        """A copy marked as learned over an iBGP session (AS path, local
        preference and communities travel unchanged)."""
        return BgpAttribute(
            local_pref=self.local_pref,
            communities=self.communities,
            as_path=self.as_path,
            ibgp_learned=True,
        )

    def contains_as(self, asn: str) -> bool:
        """True if ``asn`` already appears in the AS path (loop detection)."""
        return asn in self.as_path


@dataclass(frozen=True)
class StaticAttribute:
    """A static route.  The paper uses the singleton attribute set {true}."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "StaticAttribute()"


#: Administrative distances used when combining protocols into one RIB
#: (Cisco defaults; lower wins).
ADMIN_DISTANCE = {
    "connected": 0,
    "static": 1,
    "ebgp": 20,
    "ospf": 110,
    "rip": 120,
    "ibgp": 200,
}


@dataclass(frozen=True)
class RibAttribute:
    """A multi-protocol RIB entry (§6, Multiple Protocols).

    Tracks the per-protocol attributes alongside which protocol currently
    owns the best route (selected by administrative distance).  The
    ``chosen`` field names that protocol; the corresponding per-protocol
    attribute must be present.
    """

    bgp: Optional[BgpAttribute] = None
    ospf: Optional[OspfAttribute] = None
    static: Optional[StaticAttribute] = None
    chosen: Optional[str] = None

    def __post_init__(self) -> None:
        if self.chosen is not None and self.chosen not in ("ebgp", "ibgp", "ospf", "static"):
            raise ValueError(f"unknown protocol {self.chosen!r}")

    @property
    def is_empty(self) -> bool:
        """True if no protocol contributed a route."""
        return self.bgp is None and self.ospf is None and self.static is None

    def best_protocol(self) -> Optional[str]:
        """The protocol with the lowest administrative distance among those
        that have a route."""
        candidates = []
        if self.static is not None:
            candidates.append("static")
        if self.bgp is not None:
            candidates.append("ebgp")
        if self.ospf is not None:
            candidates.append("ospf")
        if not candidates:
            return None
        return min(candidates, key=lambda p: ADMIN_DISTANCE[p])
