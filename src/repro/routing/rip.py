"""RIP (distance vector) protocol model (§3.2).

RIP routes on hop count with a maximum path length of 16: attributes are
``{0..15}``, the destination announces ``0``, the comparison relation
prefers shorter paths, and the transfer function increments the hop count,
dropping routes that exceed the limit.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.routing.attributes import NO_ROUTE, RipAttribute
from repro.routing.protocol import Protocol
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node


class RipProtocol(Protocol):
    """The RIP model: shortest hop-count routing with a 15-hop limit."""

    name = "rip"

    def initial_attribute(self, destination: Node) -> RipAttribute:
        return RipAttribute(0)

    def prefer(self, a: RipAttribute, b: RipAttribute) -> bool:
        return a.hops < b.hops

    def default_transfer(
        self, edge: Edge, attribute: Optional[RipAttribute]
    ) -> Optional[RipAttribute]:
        if attribute is None:
            return NO_ROUTE
        return attribute.incremented()


def build_rip_srp(
    graph: Graph,
    destination: Node,
    link_filter: Optional[Callable[[Edge], bool]] = None,
) -> SRP:
    """Construct the SRP for RIP on ``graph`` rooted at ``destination``.

    Parameters
    ----------
    graph:
        The network topology (directed edges; use both directions for
        physical links).
    destination:
        The node originating the destination prefix.
    link_filter:
        Optional predicate on edges; when it returns ``False`` for an edge
        ``(u, v)``, routes from ``v`` are not accepted at ``u`` (modelling a
        distribute-list / interface filter).
    """
    protocol = RipProtocol()

    def transfer(edge: Edge, attribute: Optional[RipAttribute]) -> Optional[RipAttribute]:
        if link_filter is not None and not link_filter(edge):
            return NO_ROUTE
        return protocol.default_transfer(edge, attribute)

    return SRP(
        graph=graph,
        destination=destination,
        initial=protocol.initial_attribute(destination),
        prefer=protocol.prefer,
        transfer=transfer,
        protocol=protocol,
    )


def rip_edge_policy_keys(graph: Graph, link_filter=None) -> Dict[Edge, object]:
    """Canonical per-edge policy keys for RIP, used by abstraction refinement.

    Every RIP edge has the same transfer function (increment the metric)
    unless a filter blocks it, so the key is simply whether the edge is
    filtered.
    """
    keys: Dict[Edge, object] = {}
    for edge in graph.edges:
        blocked = link_filter is not None and not link_filter(edge)
        keys[edge] = ("rip", "blocked" if blocked else "allow")
    return keys
