"""eBGP (path vector) protocol model (§3.2, §4.3).

BGP attributes are ``(local-pref, communities, AS path)`` tuples.  The
comparison relation prefers higher local preference, breaking ties on
shorter AS path.  The transfer function along an edge ``(u, v)`` (routes
flow from the neighbour ``v`` towards ``u``):

1. applies ``v``'s *export* policy for the interface facing ``u``,
2. prepends ``v`` to the AS path (each router is its own AS, as in large
   data centres),
3. drops the route if ``u`` already appears in the path (loop prevention),
4. applies ``u``'s *import* policy for the interface facing ``v``.

Loop prevention is what makes BGP need the stronger *BGP-effective*
abstraction conditions (∀∀-abstraction + transfer-approx) and the
local-preference-bounded case splitting of Theorem 4.4.

Policies are expressed with small immutable :class:`BgpPolicy` objects so
that structural equality doubles as a canonical policy key when no BDD
encoding is requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.routing.attributes import DEFAULT_LOCAL_PREF, NO_ROUTE, BgpAttribute
from repro.routing.protocol import Protocol
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node


class BgpProtocol(Protocol):
    """The eBGP model with loop prevention."""

    name = "bgp"

    def __init__(self, unused_communities: FrozenSet[str] = frozenset()):
        #: Communities that are attached somewhere but never matched on;
        #: the attribute abstraction ``h`` strips them (§8, real networks).
        self.unused_communities = frozenset(unused_communities)

    def initial_attribute(self, destination: Node) -> BgpAttribute:
        return BgpAttribute(local_pref=DEFAULT_LOCAL_PREF, communities=frozenset(), as_path=())

    def prefer(self, a: BgpAttribute, b: BgpAttribute) -> bool:
        """Higher local-pref wins; ties broken on shorter AS path, then on
        eBGP-learned over iBGP-learned (the standard decision process)."""
        if a.local_pref != b.local_pref:
            return a.local_pref > b.local_pref
        if a.path_length != b.path_length:
            return a.path_length < b.path_length
        return (not a.ibgp_learned) and b.ibgp_learned

    def default_transfer(
        self, edge: Edge, attribute: Optional[BgpAttribute]
    ) -> Optional[BgpAttribute]:
        if attribute is None:
            return NO_ROUTE
        receiver, sender = edge
        if attribute.contains_as(str(receiver)):
            return NO_ROUTE
        return attribute.prepended(str(sender))

    def abstract_attribute(self, attribute, node_map):
        """The BGP attribute abstraction ``h``: map the AS path through ``f``
        and strip communities known to be unused."""
        if attribute is None:
            return None
        path = tuple(str(node_map(node)) for node in attribute.as_path)
        return BgpAttribute(
            local_pref=attribute.local_pref,
            communities=attribute.communities - self.unused_communities,
            as_path=path,
            ibgp_learned=attribute.ibgp_learned,
        )


# ----------------------------------------------------------------------
# Policy atoms
# ----------------------------------------------------------------------
class BgpPolicy:
    """Base class for per-interface BGP policies.

    A policy takes an announcement and returns the transformed announcement
    or ``None`` to deny it.  Policies are immutable values: equality and
    hashing give a (syntactic) canonical key usable by the abstraction
    refinement when no BDD encoding is built.
    """

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        raise NotImplementedError


@dataclass(frozen=True)
class AllowAll(BgpPolicy):
    """The identity policy: accept the announcement unchanged."""

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        return attribute


@dataclass(frozen=True)
class DenyAll(BgpPolicy):
    """Deny every announcement (e.g. a prefix filter that never matches)."""

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        return NO_ROUTE


@dataclass(frozen=True)
class SetLocalPref(BgpPolicy):
    """Set the local preference, optionally only when a community matches.

    When ``match_any_community`` is empty the preference is set
    unconditionally; otherwise it is set only if the announcement carries at
    least one of the listed communities (announcements without a match pass
    through unchanged).
    """

    local_pref: int
    match_any_community: FrozenSet[str] = frozenset()

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        if self.match_any_community and not (attribute.communities & self.match_any_community):
            return attribute
        return attribute.with_local_pref(self.local_pref)


@dataclass(frozen=True)
class AddCommunity(BgpPolicy):
    """Attach a community tag to the announcement."""

    community: str

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        return attribute.with_community(self.community)


@dataclass(frozen=True)
class RemoveCommunity(BgpPolicy):
    """Strip a community tag from the announcement."""

    community: str

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        return attribute.without_community(self.community)


@dataclass(frozen=True)
class FilterCommunity(BgpPolicy):
    """Deny announcements carrying any of the given communities."""

    deny_communities: FrozenSet[str]

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        if attribute.communities & self.deny_communities:
            return NO_ROUTE
        return attribute


@dataclass(frozen=True)
class PrependAs(BgpPolicy):
    """Prepend an AS ``count`` extra times (path inflation for traffic steering)."""

    asn: str
    count: int = 1

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        result = attribute
        for _ in range(self.count):
            result = result.prepended(self.asn)
        return result


@dataclass(frozen=True)
class Chain(BgpPolicy):
    """Apply a sequence of policies in order, stopping on the first denial."""

    policies: Tuple[BgpPolicy, ...] = ()

    def apply(self, attribute: BgpAttribute) -> Optional[BgpAttribute]:
        result: Optional[BgpAttribute] = attribute
        for policy in self.policies:
            if result is None:
                return NO_ROUTE
            result = policy.apply(result)
        return result


def chain(*policies: BgpPolicy) -> Chain:
    """Convenience constructor for :class:`Chain`."""
    return Chain(tuple(policies))


# ----------------------------------------------------------------------
# SRP construction
# ----------------------------------------------------------------------
def policy_local_prefs(policy: BgpPolicy) -> FrozenSet[int]:
    """The local-preference values a policy can assign (excluding the default)."""
    values = set()
    if isinstance(policy, SetLocalPref):
        values.add(policy.local_pref)
    elif isinstance(policy, Chain):
        for sub in policy.policies:
            values |= policy_local_prefs(sub)
    return frozenset(values)


def build_bgp_srp(
    graph: Graph,
    destination: Node,
    import_policies: Optional[Dict[Edge, BgpPolicy]] = None,
    export_policies: Optional[Dict[Edge, BgpPolicy]] = None,
    unused_communities: Iterable[str] = (),
    loop_prevention: bool = True,
) -> SRP:
    """Construct the SRP for an eBGP network.

    Parameters
    ----------
    import_policies:
        Policy applied at the *receiving* router ``u`` of edge ``(u, v)``
        after loop checking (keyed by the edge ``(u, v)``).
    export_policies:
        Policy applied at the *sending* router ``v`` of edge ``(u, v)``
        before the AS path is extended (keyed by the same edge ``(u, v)``).
    unused_communities:
        Communities the attribute abstraction should ignore.
    loop_prevention:
        Set to ``False`` to model the paper's "BGP without loop prevention"
        (used in proofs and in tests of transfer-equivalence).
    """
    protocol = BgpProtocol(unused_communities=frozenset(unused_communities))
    imports = import_policies or {}
    exports = export_policies or {}
    allow = AllowAll()

    def transfer(edge: Edge, attribute: Optional[BgpAttribute]) -> Optional[BgpAttribute]:
        if attribute is None:
            return NO_ROUTE
        receiver, sender = edge
        outgoing = exports.get(edge, allow).apply(attribute)
        if outgoing is None:
            return NO_ROUTE
        if loop_prevention and outgoing.contains_as(str(receiver)):
            return NO_ROUTE
        outgoing = outgoing.prepended(str(sender))
        incoming = imports.get(edge, allow).apply(outgoing)
        if incoming is None:
            return NO_ROUTE
        return incoming

    edge_policies: Dict[Edge, object] = {}
    for edge in graph.edges:
        edge_policies[edge] = (
            "bgp",
            exports.get(edge, allow),
            imports.get(edge, allow),
        )

    node_prefs: Dict[Node, tuple] = {}
    for node in graph.nodes:
        prefs = {DEFAULT_LOCAL_PREF}
        for edge in graph.out_edges(node):
            prefs |= policy_local_prefs(imports.get(edge, allow))
        for edge in graph.in_edges(node):
            # Export policies of this node live on in-edges (u, node).
            prefs |= policy_local_prefs(exports.get(edge, allow))
        node_prefs[node] = tuple(sorted(prefs))

    return SRP(
        graph=graph,
        destination=destination,
        initial=protocol.initial_attribute(destination),
        prefer=protocol.prefer,
        transfer=transfer,
        protocol=protocol,
        edge_policies=edge_policies,
        node_prefs=node_prefs,
    )
