"""Static routing model (§3.2, Figure 6).

Operators configure static routes that name the interface (edge) to use
for a destination.  The attribute set is the singleton ``{true}``, the
comparison relation is empty, and the transfer function ignores the
neighbour's attribute entirely: it returns ``true`` when a static route is
configured on the edge and ``⊥`` otherwise.  Static routing therefore
violates non-spontaneity and can create forwarding loops, which is exactly
why the paper treats it separately (Theorem 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.routing.attributes import NO_ROUTE, StaticAttribute
from repro.routing.protocol import Protocol
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node


class StaticProtocol(Protocol):
    """Static routing: a single attribute and an empty comparison relation."""

    name = "static"

    def initial_attribute(self, destination: Node) -> StaticAttribute:
        return StaticAttribute()

    def prefer(self, a: StaticAttribute, b: StaticAttribute) -> bool:
        # The comparison relation is trivially empty: no attribute is
        # strictly preferred to any other.
        return False

    def default_transfer(
        self, edge: Edge, attribute: Optional[StaticAttribute]
    ) -> Optional[StaticAttribute]:
        return NO_ROUTE


def build_static_srp(
    graph: Graph,
    destination: Node,
    static_edges: Iterable[Edge],
) -> SRP:
    """Construct the SRP for static routing.

    Parameters
    ----------
    static_edges:
        The edges ``(u, v)`` on which a static route towards the destination
        is configured at ``u`` (pointing out of ``u`` towards ``v``).
    """
    protocol = StaticProtocol()
    configured: Set[Edge] = set(static_edges)
    for edge in configured:
        if not graph.has_edge(*edge):
            raise ValueError(f"static route on non-existent edge {edge}")

    def transfer(edge: Edge, attribute: Optional[StaticAttribute]) -> Optional[StaticAttribute]:
        # Static routes do not depend on the neighbour's attribute at all.
        if edge in configured:
            return StaticAttribute()
        return NO_ROUTE

    edge_policies: Dict[Edge, object] = {
        edge: ("static", edge in configured) for edge in graph.edges
    }

    return SRP(
        graph=graph,
        destination=destination,
        initial=protocol.initial_attribute(destination),
        prefer=protocol.prefer,
        transfer=transfer,
        protocol=protocol,
        edge_policies=edge_policies,
    )
