"""OSPF (link state) protocol model (§3.2).

OSPF computes least-cost paths from configured link costs.  The paper
models multi-area OSPF with attributes that pair the accumulated cost with
an inter-area flag, preferring intra-area routes over inter-area routes and
breaking ties on cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.routing.attributes import NO_ROUTE, OspfAttribute
from repro.routing.protocol import Protocol
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node

#: Cost assumed for links with no explicit configuration.
DEFAULT_LINK_COST = 1


class OspfProtocol(Protocol):
    """OSPF model: least-cost routing with intra-area preference."""

    name = "ospf"

    def initial_attribute(self, destination: Node) -> OspfAttribute:
        return OspfAttribute(cost=0, inter_area=False, area=0)

    def prefer(self, a: OspfAttribute, b: OspfAttribute) -> bool:
        # Intra-area routes beat inter-area routes; ties broken on cost.
        if a.inter_area != b.inter_area:
            return not a.inter_area
        return a.cost < b.cost

    def default_transfer(
        self, edge: Edge, attribute: Optional[OspfAttribute]
    ) -> Optional[OspfAttribute]:
        if attribute is None:
            return NO_ROUTE
        return attribute.with_added_cost(DEFAULT_LINK_COST)


def build_ospf_srp(
    graph: Graph,
    destination: Node,
    link_costs: Optional[Dict[Edge, int]] = None,
    node_areas: Optional[Dict[Node, int]] = None,
    link_filter: Optional[Callable[[Edge], bool]] = None,
) -> SRP:
    """Construct the SRP for OSPF on ``graph`` rooted at ``destination``.

    Parameters
    ----------
    link_costs:
        Per-edge costs; missing edges use :data:`DEFAULT_LINK_COST`.
    node_areas:
        OSPF area of each node (default: single area ``0``).  Crossing
        between nodes in different areas marks the route inter-area.
    link_filter:
        Optional predicate; edges for which it returns ``False`` drop all
        routes (modelling passive interfaces or filters).
    """
    protocol = OspfProtocol()
    costs = link_costs or {}
    areas = node_areas or {}

    def transfer(edge: Edge, attribute: Optional[OspfAttribute]) -> Optional[OspfAttribute]:
        if attribute is None:
            return NO_ROUTE
        if link_filter is not None and not link_filter(edge):
            return NO_ROUTE
        u, v = edge
        cost = costs.get(edge, DEFAULT_LINK_COST)
        result = attribute.with_added_cost(cost)
        if areas.get(u, 0) != areas.get(v, 0):
            result = result.crossing_area(areas.get(u, 0))
        return result

    edge_policies = {}
    for edge in graph.edges:
        u, v = edge
        blocked = link_filter is not None and not link_filter(edge)
        edge_policies[edge] = (
            "ospf",
            costs.get(edge, DEFAULT_LINK_COST),
            areas.get(u, 0),
            areas.get(v, 0),
            "blocked" if blocked else "allow",
        )

    return SRP(
        graph=graph,
        destination=destination,
        initial=protocol.initial_attribute(destination),
        prefer=protocol.prefer,
        transfer=transfer,
        protocol=protocol,
        edge_policies=edge_policies,
    )
