"""SRP solutions: labelings, forwarding relations and stability checks (§3.1).

A *solution* to an SRP is a labeling ``L : V -> A⊥`` satisfying the
stability constraints of Figure 4: the destination keeps its initial
attribute, a node with no offers has no route, and every other node holds a
minimal offered attribute.  The induced forwarding relation ``fwd_L(u)``
contains the edges whose offered attribute is as good as the chosen one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node

Attribute = Any
Labeling = Dict[Node, Optional[Attribute]]


@dataclass
class Solution:
    """A stable solution to an SRP.

    Attributes
    ----------
    srp:
        The instance this labels.
    labeling:
        The attribute chosen at each node (``None`` meaning no route).
    transfer_cache:
        Optional memo of ``(edge, neighbour_label) -> transferred
        attribute`` filled in by the solver.  The final stability pass
        evaluates every edge under the final labeling, so forwarding-edge
        extraction afterwards is pure cache hits instead of re-running the
        (route-map-heavy) transfer functions.
    """

    srp: SRP
    labeling: Labeling = field(default_factory=dict)
    transfer_cache: Optional[Dict] = field(
        default=None, repr=False, compare=False
    )

    def _offers(self, node: Node) -> List[Tuple[Edge, Attribute]]:
        """``choices_L(node)`` under this labeling, via the cache if set."""
        cache = self.transfer_cache
        if cache is None:
            return self.srp.choices(node, self.labeling)
        transfer = self.srp.transfer
        get_label = self.labeling.get
        result = []
        for edge in self.srp.graph.out_edges(node):
            label = get_label(edge[1])
            key = (edge, label)
            try:
                attr = cache[key]
            except KeyError:
                attr = cache[key] = transfer(edge, label)
            except TypeError:
                attr = transfer(edge, label)
            if attr is not None:
                result.append((edge, attr))
        return result

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def forwarding_edges(self, node: Node) -> List[Edge]:
        """The paper's ``fwd_L(node)``: edges carrying an offer as good as
        the node's chosen attribute.  Empty for the destination and for
        nodes with no route."""
        chosen = self.labeling.get(node)
        if chosen is None or node == self.srp.destination:
            return []
        edges = []
        for edge, attr in self._offers(node):
            if self.srp.equally_preferred(attr, chosen):
                edges.append(edge)
        return edges

    def forwarding_graph(self) -> Graph:
        """The sub-graph containing only forwarding edges."""
        g = Graph()
        for node in self.srp.graph.nodes:
            g.add_node(node)
        for node in self.srp.graph.nodes:
            for edge in self.forwarding_edges(node):
                g.add_edge(*edge)
        return g

    def next_hops(self, node: Node) -> Set[Node]:
        """The neighbours ``node`` forwards traffic to."""
        return {v for _, v in self.forwarding_edges(node)}

    def forwarding_paths(self, source: Node, max_paths: int = 10_000) -> List[List[Node]]:
        """All loop-free forwarding paths from ``source``.

        Each path ends either at the destination, at a node with no route
        (black hole), or at the first repeated node (loop; the repeated node
        appears twice so callers can detect it).
        """
        paths: List[List[Node]] = []

        def walk(node: Node, path: List[Node]) -> None:
            if len(paths) >= max_paths:
                return
            if node == self.srp.destination:
                paths.append(path)
                return
            hops = self.forwarding_edges(node)
            if not hops:
                paths.append(path)
                return
            for _, nxt in sorted(hops, key=lambda e: str(e[1])):
                if nxt in path:
                    paths.append(path + [nxt])
                    continue
                walk(nxt, path + [nxt])

        walk(source, [source])
        return paths

    # ------------------------------------------------------------------
    # Stability
    # ------------------------------------------------------------------
    def is_stable(self) -> bool:
        """True iff the labeling satisfies the SRP solution constraints."""
        return not self.violations()

    def violations(self) -> List[str]:
        """Human-readable descriptions of every stability violation."""
        problems: List[str] = []
        srp = self.srp
        for node in srp.graph.nodes:
            label = self.labeling.get(node)
            if node == srp.destination:
                if label != srp.initial:
                    problems.append(
                        f"destination {node!r} labelled {label!r}, expected {srp.initial!r}"
                    )
                continue
            offers = [attr for _, attr in self._offers(node)]
            if not offers:
                if label is not None:
                    problems.append(f"{node!r} has no offers but is labelled {label!r}")
                continue
            if label is None:
                problems.append(f"{node!r} has offers {offers!r} but no route")
                continue
            if not any(srp.equally_preferred(label, offer) for offer in offers):
                problems.append(f"{node!r} label {label!r} is not among its offers")
                continue
            better = [offer for offer in offers if srp.prefer(offer, label)]
            if better:
                problems.append(
                    f"{node!r} label {label!r} is not minimal; better offers: {better!r}"
                )
        return problems

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    def routed_nodes(self) -> Set[Node]:
        """Nodes that hold a route to the destination."""
        return {n for n, a in self.labeling.items() if a is not None}

    def unrouted_nodes(self) -> Set[Node]:
        """Nodes with no route to the destination."""
        return {n for n in self.srp.graph.nodes if self.labeling.get(n) is None}

    def as_table(self) -> List[Tuple[Node, Optional[Attribute], Set[Node]]]:
        """A simple (node, attribute, next-hops) table for display."""
        return [
            (node, self.labeling.get(node), self.next_hops(node))
            for node in self.srp.graph.nodes
        ]
