"""SRP solvers: compute stable solutions by simulating the control plane.

The paper never needs to *solve* SRPs to compute abstractions -- that is
the whole point -- but this repository uses a solver in three places:

1. to validate that abstractions really are CP-equivalent (tests),
2. as the Batfish-style control-plane simulation substrate on which the
   downstream analyses (reachability, verification benchmarks) run, and
3. to explore the multiple solutions BGP gadgets can exhibit.

Three solvers are provided:

* :func:`solve` -- the production solver: a dependency-tracked *worklist*
  computation that is round-for-round equivalent to the synchronous sweep
  (identical labeling after every round, hence an identical fixed point
  and identical convergence behaviour) but only recomputes nodes whose
  out-neighbours' labels changed in the previous round.  On a network of
  diameter ``d`` the sweep costs ``O(d x |E|)`` transfer evaluations; the
  worklist touches each edge only while its frontier passes, which is the
  difference between seconds and minutes on long-diameter topologies.
* :func:`solve_sweep` -- the original synchronous fixed-point (full
  round-robin) computation with deterministic tie-breaking.  This matches
  how Batfish simulates the control plane; it is kept as the *reference
  oracle* the equivalence tests and the hot-path benchmark compare
  :func:`solve` against.
* :func:`solve_with_activation_order` -- an asynchronous simulation that
  processes one node at a time following a caller-supplied (or seeded
  pseudo-random) activation sequence; different orders can surface the
  different stable solutions of policy-rich BGP networks (e.g. Figure 2).

No solver can return an unconverged labeling silently: exhausting the
round (or activation) budget raises :class:`ConvergenceError`.  A
returned :class:`~repro.srp.solution.Solution` is stable by construction
(a round that changes nothing is exactly the fixed-point condition);
``solve_sweep`` and ``solve_with_activation_order`` additionally re-check
stability through the live transfer functions, which the equivalence
tests use to cross-validate the worklist solver.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, List, Optional, Sequence

from repro.obs import metrics as _metrics
from repro.srp.instance import SRP
from repro.srp.solution import Labeling, Solution
from repro.topology.graph import Node

Attribute = Any


class ConvergenceError(Exception):
    """Raised when the simulation does not reach a fixed point."""


class SolveCounters:
    """Per-process counters of solver entry points (test/bench observability).

    The zero-baseline-re-solve guarantee of stored-baseline delta runs is
    asserted against these: ``scratch_solves`` counts full fixed-point
    computations (:func:`solve`, :func:`solve_sweep`,
    :func:`solve_with_activation_order`), ``seeded_solves`` counts
    incremental :func:`solve_seeded` calls.  Counters are process-local and
    not thread-synchronised -- they are a measurement aid, not a contended
    data structure.
    """

    __slots__ = ("scratch_solves", "seeded_solves")

    def __init__(self) -> None:
        self.scratch_solves = 0
        self.seeded_solves = 0

    def reset(self) -> None:
        self.scratch_solves = 0
        self.seeded_solves = 0

    def snapshot(self) -> dict:
        return {
            "scratch_solves": self.scratch_solves,
            "seeded_solves": self.seeded_solves,
        }


#: Module-level counters incremented by every solver entry point.
COUNTERS = SolveCounters()


#: Default bound on the per-(edge, label) transfer memo of one solve.  A
#: single solve can never grow it past O(edges x labels seen), but failure
#: sweeps carry one cache across thousands of scenario re-solves, so the
#: memo is cleared wholesale on overflow (the ``BddManager.ite`` precedent:
#: correctness is unaffected, only hit rates).
DEFAULT_TRANSFER_CACHE_LIMIT = 1_000_000


class TransferCache(dict):
    """A bounded ``(edge, neighbour_label) -> attribute`` memo with counters.

    Plain ``dict`` reads/writes keep the solver hot path unchanged; the
    solver consults :attr:`limit` before inserting and clears the cache
    wholesale on overflow.  ``hits``/``misses``/``overflows`` let sweeps
    report memo effectiveness (:meth:`info`).
    """

    def __init__(self, limit: Optional[int] = DEFAULT_TRANSFER_CACHE_LIMIT):
        super().__init__()
        if limit is not None and limit <= 0:
            raise ValueError("limit must be positive (or None for unbounded)")
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.overflows = 0

    def seeded_from(self, other: Optional[dict]) -> "TransferCache":
        """Copy another solve's memo entries in (counters start fresh)."""
        if other:
            self.update(other)
            if self.limit is not None and len(self) >= self.limit:
                self.clear()
        return self

    def info(self) -> dict:
        return {
            "size": len(self),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
            "overflows": self.overflows,
        }


def _attribute_sort_key(attr: Attribute) -> str:
    """A deterministic (but semantically meaningless) tie-breaking key."""
    return repr(attr)


def _best_choice(srp: SRP, node: Node, labeling: Labeling) -> Optional[Attribute]:
    """The minimal offered attribute at ``node`` under ``labeling``.

    Ties under ``≺`` are broken deterministically by the textual
    representation of the attribute so that repeated runs converge to the
    same solution.
    """
    offers = [attr for _, attr in srp.choices(node, labeling)]
    if not offers:
        return None
    best = offers[0]
    for attr in offers[1:]:
        if srp.prefer(attr, best):
            best = attr
        elif srp.equally_preferred(attr, best) and _attribute_sort_key(attr) < _attribute_sort_key(best):
            best = attr
    return best


def solve(
    srp: SRP,
    max_rounds: int = 1000,
    transfer_cache: Optional["TransferCache"] = None,
) -> Solution:
    """Compute a stable solution by dependency-tracked worklist iteration.

    Round-for-round equivalent to :func:`solve_sweep` -- after every round
    the labeling is identical to what a full synchronous sweep would have
    produced -- because a node's best choice depends only on the labels of
    its out-neighbours: a node none of whose out-neighbours changed in the
    previous round would recompute the same label, so the worklist skips
    it.  The first round evaluates every node (transfer functions may
    produce attributes from a ``None`` input, e.g. static routes).

    Raises
    ------
    ConvergenceError
        If no fixed point is reached within ``max_rounds`` rounds (e.g. a
        BGP dispute gadget that oscillates under synchronous updates).  An
        unconverged labeling is never returned silently.
    """
    COUNTERS.scratch_solves += 1
    _metrics.counter("srp.scratch_solves").inc()
    labeling: Labeling = {node: None for node in srp.graph.nodes}
    labeling[srp.destination] = srp.initial
    dirty = [node for node in srp.graph.nodes if node != srp.destination]
    return _worklist(
        srp,
        labeling,
        dirty,
        _as_transfer_cache(transfer_cache),
        max_rounds,
        # Round 1 marks every node dirty, so the no-update round *is* the
        # stability proof (see the in-loop comment); no final re-check.
        verify_stability=False,
    )


def solve_seeded(
    srp: SRP,
    labeling: Labeling,
    dirty,
    transfer_cache: Optional["TransferCache"] = None,
    max_rounds: int = 1000,
) -> Solution:
    """Worklist solve seeded from a prior labeling (incremental re-solve).

    ``labeling`` must cover every node of ``srp.graph`` (``None`` for "no
    route") and hold the destination's initial attribute; ``dirty`` names
    the nodes whose offers may differ from what ``labeling`` was computed
    under -- under a link failure: nodes incident to failed edges, nodes
    whose baseline route traversed one (reset to ``None`` by the caller,
    see :mod:`repro.failures.incremental`), and their dependents.  Nodes
    outside ``dirty`` are only re-examined if a neighbour's label changes.

    A ``transfer_cache`` seeded from the baseline solve makes the initial
    offer-table construction almost entirely memo hits, which is where the
    incremental speedup comes from.

    Unlike :func:`solve`, the initial worklist does not cover every node,
    so the no-update round is *not* a stability proof on its own; a final
    offer-table scan re-verifies stability of every node and raises
    :class:`ConvergenceError` on any violation (an incorrectly seeded
    labeling is never returned silently -- callers treat that as "fall
    back to a scratch solve").
    """
    COUNTERS.seeded_solves += 1
    _metrics.counter("srp.seeded_solves").inc()
    seeded: Labeling = {node: labeling.get(node) for node in srp.graph.nodes}
    seeded[srp.destination] = srp.initial
    dirty = list(
        dict.fromkeys(node for node in dirty if node != srp.destination)
    )
    return _worklist(
        srp,
        seeded,
        dirty,
        _as_transfer_cache(transfer_cache),
        max_rounds,
        verify_stability=True,
    )


def _as_transfer_cache(cache) -> "TransferCache":
    """Normalise an optional caller-supplied memo to a :class:`TransferCache`."""
    if cache is None:
        return TransferCache()
    if isinstance(cache, TransferCache):
        return cache
    return TransferCache().seeded_from(cache)


def _worklist(
    srp: SRP,
    labeling: Labeling,
    dirty,
    transfer_cache,
    max_rounds: int,
    verify_stability: bool,
) -> Solution:
    """The dependency-tracked worklist core shared by :func:`solve` and
    :func:`solve_seeded`.

    The inner loop touches only the cache's fast local attribute
    counters; their per-solve deltas (plus the transfer's eval-cache
    info, when present) are absorbed into the :mod:`repro.obs` registry
    once on the way out -- the solve boundary is the coarsest point that
    still attributes cache traffic to the right span.
    """
    hits0, misses0, over0 = (
        transfer_cache.hits, transfer_cache.misses, transfer_cache.overflows,
    )
    eval_info = getattr(srp.transfer, "eval_cache_info", None)
    eval0 = eval_info() if eval_info is not None else None
    try:
        return _worklist_run(
            srp, labeling, dirty, transfer_cache, max_rounds, verify_stability
        )
    finally:
        _metrics.absorb_cache_info(
            "srp.transfer_cache",
            {"hits": hits0, "misses": misses0, "overflows": over0},
            {
                "hits": transfer_cache.hits,
                "misses": transfer_cache.misses,
                "overflows": transfer_cache.overflows,
            },
        )
        if eval_info is not None:
            _metrics.absorb_cache_info("config.eval_cache", eval0, eval_info())


def _worklist_run(
    srp: SRP,
    labeling: Labeling,
    dirty,
    transfer_cache,
    max_rounds: int,
    verify_stability: bool,
) -> Solution:
    graph = srp.graph
    transfer = srp.transfer
    prefer = srp.prefer
    destination = srp.destination

    # Static adjacency, materialised once: out_edges feed a node's choices;
    # dependents(v) are the nodes whose choices read v's label.
    out_edges = {node: tuple(graph.out_edges(node)) for node in graph.nodes}
    dependents = {
        node: tuple(u for u, _ in graph.in_edges(node)) for node in graph.nodes
    }

    # Transfer results memoised per (edge, neighbour-label): ``trans`` is a
    # pure function in the SRP model and attributes are value-semantic
    # frozen dataclasses, so the same offer never needs recomputing.
    # Unhashable labels (custom attribute types) fall back to direct calls.
    cache_limit = getattr(transfer_cache, "limit", None)
    sort_keys: dict = {}
    # Per-node offer table: offers[node][edge] is the attribute currently
    # offered over that edge (None = dropped), kept incrementally -- when a
    # neighbour's label changes only that edge is re-evaluated, and the
    # final stability pass runs without touching the transfer functions at
    # all.  Insertion order is the out-edge order, so the deterministic
    # tie-breaking scan matches the sweep oracle exactly.
    offers: dict = {}

    def attribute_key(attr) -> str:
        # repr() of a frozen attribute is pure; memoise it (ties recur).
        try:
            key = sort_keys.get(attr)
            if key is None:
                key = sort_keys[attr] = _attribute_sort_key(attr)
            return key
        except TypeError:
            return _attribute_sort_key(attr)

    # Equal attributes are interned to one representative object, so the
    # (extremely common, e.g. ECMP) "offer equals the current best" case is
    # a pointer comparison instead of two ``prefer`` calls plus an
    # (equality-preserving, hence semantics-preserving) repr tie-break.
    interned: dict = {}

    def evaluate(edge, label) -> Optional[Attribute]:
        key = (edge, label)
        try:
            attr = transfer_cache[key]
        except KeyError:
            attr = transfer(edge, label)
            if attr is not None:
                try:
                    attr = interned.setdefault(attr, attr)
                except TypeError:
                    pass
            if cache_limit is not None and len(transfer_cache) >= cache_limit:
                transfer_cache.clear()
                transfer_cache.overflows += 1
            transfer_cache[key] = attr
            transfer_cache.misses += 1
            return attr
        except TypeError:
            return transfer(edge, label)
        transfer_cache.hits += 1
        return attr

    def best_of(node_offers) -> Optional[Attribute]:
        best = None
        best_key = None
        for attr in node_offers.values():
            if attr is None or attr is best:
                continue
            if best is None:
                best = attr
                best_key = None
                continue
            if prefer(attr, best):
                best = attr
                best_key = None
            elif not prefer(best, attr):
                # Equally preferred: break the tie deterministically.
                if best_key is None:
                    best_key = attribute_key(best)
                attr_key = attribute_key(attr)
                if attr_key < best_key:
                    best = attr
                    best_key = attr_key
        return best

    # Every node's offer table is built up front from the seed labeling
    # (transfer functions may produce attributes from a ``None`` input,
    # e.g. static routes).  In a scratch solve this is round 1's work; in a
    # seeded solve it is almost entirely memo hits against the baseline's
    # transfer cache.
    get_label = labeling.get
    for node in graph.nodes:
        if node != destination:
            offers[node] = {
                edge: evaluate(edge, get_label(edge[1])) for edge in out_edges[node]
            }

    for _ in range(max_rounds):
        # Compute this round's updates from the previous round's labeling
        # (synchronous semantics), then apply them all at once.  A round
        # with no updates is exactly a sweep round that changes nothing,
        # so convergence happens on the same round as the sweep oracle.
        updates = []
        for node in dirty:
            best = best_of(offers[node])
            if best != labeling[node]:
                updates.append((node, best))
        if not updates:
            # When the initial worklist covered every node (a scratch
            # solve), a no-update round IS the stability proof: every
            # node's label equals the best of its offer table, and the
            # tables reflect the final labeling (each edge was re-evaluated
            # whenever its neighbour changed).  Re-scanning the same
            # memoised tables could never disagree, so no redundant check
            # is performed; ``solve_sweep`` -- the reference oracle --
            # retains the live ``Solution.is_stable()`` re-evaluation that
            # would catch an impure (model-violating) transfer function.
            #
            # A *seeded* solve starts from a labeling the solver did not
            # derive itself, and nodes outside the initial worklist were
            # trusted, not checked -- so the seeded path re-verifies every
            # node against the (fully materialised, memoised) offer tables
            # before returning.  O(E) dict scans, no transfer calls.
            if verify_stability:
                for node in graph.nodes:
                    if node == destination:
                        continue
                    if best_of(offers[node]) != labeling[node]:
                        raise ConvergenceError(
                            f"seeded labeling converged to an unstable fixed "
                            f"point at node {node!r} (bad seed?)"
                        )
            # Hand the transfer memo to the solution: every edge has been
            # evaluated under the final labeling, so forwarding-edge
            # extraction downstream is pure cache hits.
            return Solution(
                srp=srp, labeling=labeling, transfer_cache=transfer_cache
            )
        next_dirty = {}
        for node, best in updates:
            labeling[node] = best
            for dependent in dependents[node]:
                if dependent != destination:
                    next_dirty[dependent] = True
                    offers[dependent][(dependent, node)] = evaluate(
                        (dependent, node), best
                    )
        dirty = list(next_dirty)
    raise ConvergenceError(f"no fixed point after {max_rounds} rounds")


def solve_sweep(srp: SRP, max_rounds: int = 1000) -> Solution:
    """Compute a stable solution by synchronous full-sweep iteration.

    Every round recomputes each node's best choice from the previous
    round's labeling; iteration stops when a full round changes nothing.
    This is the reference oracle :func:`solve` is validated against; use
    :func:`solve` on anything performance-sensitive.

    Raises
    ------
    ConvergenceError
        If no fixed point is reached within ``max_rounds`` rounds (e.g. a
        BGP dispute gadget that oscillates under synchronous updates).  An
        unconverged labeling is never returned silently.
    """
    COUNTERS.scratch_solves += 1
    _metrics.counter("srp.scratch_solves").inc()
    labeling: Labeling = {node: None for node in srp.graph.nodes}
    labeling[srp.destination] = srp.initial

    for _ in range(max_rounds):
        changed = False
        new_labeling: Labeling = dict(labeling)
        for node in srp.graph.nodes:
            if node == srp.destination:
                continue
            best = _best_choice(srp, node, labeling)
            if best != labeling[node]:
                new_labeling[node] = best
                changed = True
        labeling = new_labeling
        if not changed:
            solution = Solution(srp=srp, labeling=labeling)
            if solution.is_stable():
                return solution
            # A synchronous fixed point is always stable by construction,
            # but guard against pathological transfer functions anyway.
            raise ConvergenceError(
                "synchronous fixed point reached an unstable labeling: "
                + "; ".join(solution.violations())
            )
    raise ConvergenceError(f"no fixed point after {max_rounds} rounds")


def solve_with_activation_order(
    srp: SRP,
    order: Optional[Sequence[Node]] = None,
    seed: Optional[int] = None,
    max_activations: int = 200_000,
) -> Solution:
    """Compute a stable solution with an asynchronous activation sequence.

    Nodes are activated one at a time; an activated node recomputes its best
    choice from the *current* labeling.  The process repeats (cycling over
    ``order``) until a full pass changes nothing.

    Parameters
    ----------
    order:
        The activation order (a permutation of the non-destination nodes, or
        any sequence -- missing nodes are appended).  When omitted, a
        pseudo-random permutation derived from ``seed`` is used.
    seed:
        Seed for the pseudo-random order when ``order`` is not given.
    """
    COUNTERS.scratch_solves += 1
    _metrics.counter("srp.scratch_solves").inc()
    nodes = [n for n in srp.graph.nodes if n != srp.destination]
    if order is None:
        rng = random.Random(seed)
        order = list(nodes)
        rng.shuffle(order)
    else:
        order = list(order) + [n for n in nodes if n not in order]

    labeling: Labeling = {node: None for node in srp.graph.nodes}
    labeling[srp.destination] = srp.initial

    activations = 0
    while activations < max_activations:
        changed = False
        for node in order:
            if node == srp.destination:
                continue
            activations += 1
            best = _best_choice(srp, node, labeling)
            if best != labeling[node]:
                labeling[node] = best
                changed = True
        if not changed:
            solution = Solution(srp=srp, labeling=labeling)
            if solution.is_stable():
                return solution
            raise ConvergenceError(
                "asynchronous fixed point reached an unstable labeling: "
                + "; ".join(solution.violations())
            )
    raise ConvergenceError(f"no fixed point after {max_activations} activations")


def enumerate_solutions(
    srp: SRP,
    attempts: int = 20,
    seed: int = 0,
    max_permutations: Optional[int] = None,
) -> List[Solution]:
    """Explore distinct stable solutions by varying the activation order.

    For small networks (at most 7 non-destination nodes, or when
    ``max_permutations`` covers all orders) every permutation is tried;
    otherwise ``attempts`` pseudo-random orders are sampled.  Solutions are
    de-duplicated by their labeling.  The search is heuristic: BGP networks
    can have solutions no activation order of this simple simulator reaches,
    but it suffices for the gadgets studied in the paper.
    """
    nodes = [n for n in srp.graph.nodes if n != srp.destination]
    solutions: List[Solution] = []
    seen = set()

    def record(solution: Solution) -> None:
        key = tuple(sorted((str(k), repr(v)) for k, v in solution.labeling.items()))
        if key not in seen:
            seen.add(key)
            solutions.append(solution)

    exhaustive_limit = max_permutations if max_permutations is not None else 5040
    total_orders = 1
    for i in range(2, len(nodes) + 1):
        total_orders *= i
        if total_orders > exhaustive_limit:
            break

    if total_orders <= exhaustive_limit:
        for order in itertools.permutations(nodes):
            try:
                record(solve_with_activation_order(srp, order=list(order)))
            except ConvergenceError:
                continue
    else:
        for attempt in range(attempts):
            try:
                record(solve_with_activation_order(srp, seed=seed + attempt))
            except ConvergenceError:
                continue
    return solutions


def has_stable_solution(srp: SRP, attempts: int = 10, seed: int = 0) -> bool:
    """Heuristically report whether the SRP converges to some stable solution."""
    try:
        solve(srp)
        return True
    except ConvergenceError:
        pass
    for attempt in range(attempts):
        try:
            solve_with_activation_order(srp, seed=seed + attempt)
            return True
        except ConvergenceError:
            continue
    return False
