"""SRP solvers: compute stable solutions by simulating the control plane.

The paper never needs to *solve* SRPs to compute abstractions -- that is
the whole point -- but this repository uses a solver in three places:

1. to validate that abstractions really are CP-equivalent (tests),
2. as the Batfish-style control-plane simulation substrate on which the
   downstream analyses (reachability, verification benchmarks) run, and
3. to explore the multiple solutions BGP gadgets can exhibit.

Two solvers are provided:

* :func:`solve` -- a synchronous fixed-point (round-based) computation with
  deterministic tie-breaking.  This matches how Batfish simulates the
  control plane and converges for the protocols modelled here.
* :func:`solve_with_activation_order` -- an asynchronous simulation that
  processes one node at a time following a caller-supplied (or seeded
  pseudo-random) activation sequence; different orders can surface the
  different stable solutions of policy-rich BGP networks (e.g. Figure 2).
"""

from __future__ import annotations

import itertools
import random
from typing import Any, List, Optional, Sequence

from repro.srp.instance import SRP
from repro.srp.solution import Labeling, Solution
from repro.topology.graph import Node

Attribute = Any


class ConvergenceError(Exception):
    """Raised when the simulation does not reach a fixed point."""


def _attribute_sort_key(attr: Attribute) -> str:
    """A deterministic (but semantically meaningless) tie-breaking key."""
    return repr(attr)


def _best_choice(srp: SRP, node: Node, labeling: Labeling) -> Optional[Attribute]:
    """The minimal offered attribute at ``node`` under ``labeling``.

    Ties under ``≺`` are broken deterministically by the textual
    representation of the attribute so that repeated runs converge to the
    same solution.
    """
    offers = [attr for _, attr in srp.choices(node, labeling)]
    if not offers:
        return None
    best = offers[0]
    for attr in offers[1:]:
        if srp.prefer(attr, best):
            best = attr
        elif srp.equally_preferred(attr, best) and _attribute_sort_key(attr) < _attribute_sort_key(best):
            best = attr
    return best


def solve(srp: SRP, max_rounds: int = 1000) -> Solution:
    """Compute a stable solution by synchronous fixed-point iteration.

    Every round recomputes each node's best choice from the previous
    round's labeling; iteration stops when a full round changes nothing.

    Raises
    ------
    ConvergenceError
        If no fixed point is reached within ``max_rounds`` rounds (e.g. a
        BGP dispute gadget that oscillates under synchronous updates).
    """
    labeling: Labeling = {node: None for node in srp.graph.nodes}
    labeling[srp.destination] = srp.initial

    for _ in range(max_rounds):
        changed = False
        new_labeling: Labeling = dict(labeling)
        for node in srp.graph.nodes:
            if node == srp.destination:
                continue
            best = _best_choice(srp, node, labeling)
            if best != labeling[node]:
                new_labeling[node] = best
                changed = True
        labeling = new_labeling
        if not changed:
            solution = Solution(srp=srp, labeling=labeling)
            if solution.is_stable():
                return solution
            # A synchronous fixed point is always stable by construction,
            # but guard against pathological transfer functions anyway.
            raise ConvergenceError(
                "synchronous fixed point reached an unstable labeling: "
                + "; ".join(solution.violations())
            )
    raise ConvergenceError(f"no fixed point after {max_rounds} rounds")


def solve_with_activation_order(
    srp: SRP,
    order: Optional[Sequence[Node]] = None,
    seed: Optional[int] = None,
    max_activations: int = 200_000,
) -> Solution:
    """Compute a stable solution with an asynchronous activation sequence.

    Nodes are activated one at a time; an activated node recomputes its best
    choice from the *current* labeling.  The process repeats (cycling over
    ``order``) until a full pass changes nothing.

    Parameters
    ----------
    order:
        The activation order (a permutation of the non-destination nodes, or
        any sequence -- missing nodes are appended).  When omitted, a
        pseudo-random permutation derived from ``seed`` is used.
    seed:
        Seed for the pseudo-random order when ``order`` is not given.
    """
    nodes = [n for n in srp.graph.nodes if n != srp.destination]
    if order is None:
        rng = random.Random(seed)
        order = list(nodes)
        rng.shuffle(order)
    else:
        order = list(order) + [n for n in nodes if n not in order]

    labeling: Labeling = {node: None for node in srp.graph.nodes}
    labeling[srp.destination] = srp.initial

    activations = 0
    while activations < max_activations:
        changed = False
        for node in order:
            if node == srp.destination:
                continue
            activations += 1
            best = _best_choice(srp, node, labeling)
            if best != labeling[node]:
                labeling[node] = best
                changed = True
        if not changed:
            solution = Solution(srp=srp, labeling=labeling)
            if solution.is_stable():
                return solution
            raise ConvergenceError(
                "asynchronous fixed point reached an unstable labeling: "
                + "; ".join(solution.violations())
            )
    raise ConvergenceError(f"no fixed point after {max_activations} activations")


def enumerate_solutions(
    srp: SRP,
    attempts: int = 20,
    seed: int = 0,
    max_permutations: Optional[int] = None,
) -> List[Solution]:
    """Explore distinct stable solutions by varying the activation order.

    For small networks (at most 7 non-destination nodes, or when
    ``max_permutations`` covers all orders) every permutation is tried;
    otherwise ``attempts`` pseudo-random orders are sampled.  Solutions are
    de-duplicated by their labeling.  The search is heuristic: BGP networks
    can have solutions no activation order of this simple simulator reaches,
    but it suffices for the gadgets studied in the paper.
    """
    nodes = [n for n in srp.graph.nodes if n != srp.destination]
    solutions: List[Solution] = []
    seen = set()

    def record(solution: Solution) -> None:
        key = tuple(sorted((str(k), repr(v)) for k, v in solution.labeling.items()))
        if key not in seen:
            seen.add(key)
            solutions.append(solution)

    exhaustive_limit = max_permutations if max_permutations is not None else 5040
    total_orders = 1
    for i in range(2, len(nodes) + 1):
        total_orders *= i
        if total_orders > exhaustive_limit:
            break

    if total_orders <= exhaustive_limit:
        for order in itertools.permutations(nodes):
            try:
                record(solve_with_activation_order(srp, order=list(order)))
            except ConvergenceError:
                continue
    else:
        for attempt in range(attempts):
            try:
                record(solve_with_activation_order(srp, seed=seed + attempt))
            except ConvergenceError:
                continue
    return solutions


def has_stable_solution(srp: SRP, attempts: int = 10, seed: int = 0) -> bool:
    """Heuristically report whether the SRP converges to some stable solution."""
    try:
        solve(srp)
        return True
    except ConvergenceError:
        pass
    for attempt in range(attempts):
        try:
            solve_with_activation_order(srp, seed=seed + attempt)
            return True
        except ConvergenceError:
            continue
    return False
