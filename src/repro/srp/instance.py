"""The Stable Routing Problem (SRP) instance (§3.1).

An SRP is the paper's generic model of a routing protocol running on a
topology: a tuple ``(G, A, ad, ≺, trans)`` of a graph with a destination, a
set of attributes, the destination's initial attribute, a comparison
relation, and a transfer function.  This module defines the instance
itself; solutions live in :mod:`repro.srp.solution` and the solver in
:mod:`repro.srp.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.topology.graph import Edge, Graph, Node

Attribute = Any
PreferFn = Callable[[Attribute, Attribute], bool]
TransferFn = Callable[[Edge, Optional[Attribute]], Optional[Attribute]]


class SRPError(Exception):
    """Raised for malformed SRP instances."""


@dataclass
class SRP:
    """A Stable Routing Problem instance.

    Attributes
    ----------
    graph:
        The network topology ``G = (V, E)``.
    destination:
        The destination vertex ``d``.
    initial:
        The initial attribute ``ad`` announced by the destination.
    prefer:
        The strict comparison relation ``≺``: ``prefer(a, b)`` is True iff
        ``a`` is strictly better than ``b``.
    transfer:
        The transfer function ``trans(e, a)``: given edge ``e = (u, v)`` and
        the attribute at the neighbour ``v``, returns the attribute received
        at ``u``, or ``None`` when the route is dropped.
    protocol:
        Optional protocol object the instance was built from; carries the
        attribute abstraction ``h`` used when validating CP-equivalence.
    edge_policies:
        Optional per-edge canonical policy keys.  Two edges with equal keys
        are guaranteed to have identical transfer functions for this
        destination; the abstraction-refinement algorithm groups nodes using
        these keys (in the full pipeline they are BDD node identities).
    node_prefs:
        Optional per-node tuple of BGP local-preference values the node's
        policy can assign (used to bound BGP case splitting, Theorem 4.4).
    """

    graph: Graph
    destination: Node
    initial: Attribute
    prefer: PreferFn
    transfer: TransferFn
    protocol: Any = None
    edge_policies: Dict[Edge, Any] = field(default_factory=dict)
    node_prefs: Dict[Node, tuple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.graph.has_node(self.destination):
            raise SRPError(f"destination {self.destination!r} is not in the graph")

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self):
        return self.graph.nodes

    @property
    def edges(self):
        return self.graph.edges

    def equally_preferred(self, a: Attribute, b: Attribute) -> bool:
        """The paper's ``a ≈ b``: neither strictly preferred to the other."""
        return not self.prefer(a, b) and not self.prefer(b, a)

    def choices(self, node: Node, labeling: Dict[Node, Optional[Attribute]]):
        """The paper's ``choices_L(u)``: the non-dropped attributes offered to
        ``node`` by its neighbours under ``labeling``, as ``(edge, attr)``
        pairs."""
        result = []
        for edge in self.graph.out_edges(node):
            _, neighbour = edge
            attr = self.transfer(edge, labeling.get(neighbour))
            if attr is not None:
                result.append((edge, attr))
        return result

    def policy_key(self, edge: Edge) -> Any:
        """The canonical policy key for ``edge`` (defaults to a shared key)."""
        return self.edge_policies.get(edge, ("default",))

    def prefs(self, node: Node) -> tuple:
        """Local-preference values assignable at ``node`` (default: one)."""
        return self.node_prefs.get(node, (0,))
