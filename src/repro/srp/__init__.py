"""The Stable Routing Problem: instances, solutions and solvers (§3)."""

from repro.srp.instance import SRP, SRPError
from repro.srp.solution import Labeling, Solution
from repro.srp.solver import (
    ConvergenceError,
    enumerate_solutions,
    has_stable_solution,
    solve,
    solve_with_activation_order,
)
from repro.srp.wellformed import WellFormednessReport, assert_well_formed, check_well_formed

__all__ = [
    "SRP",
    "SRPError",
    "Labeling",
    "Solution",
    "ConvergenceError",
    "enumerate_solutions",
    "has_stable_solution",
    "solve",
    "solve_with_activation_order",
    "WellFormednessReport",
    "assert_well_formed",
    "check_well_formed",
]
