"""Well-formedness checks for SRP instances (§3.1).

The paper defines two practical properties of well-formed SRPs:

* **self-loop-freedom** -- the graph contains no edge ``(v, v)``;
* **non-spontaneity** -- ``trans(e, ⊥) = ⊥``: a router cannot obtain a
  route from a neighbour that has none.

Static routing deliberately violates non-spontaneity (the transfer function
ignores the neighbour's attribute), which is why the paper proves its
correctness separately (Theorem 4.3); :func:`check_well_formed` therefore
allows callers to skip that check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.srp.instance import SRP


@dataclass
class WellFormednessReport:
    """Outcome of the well-formedness checks."""

    self_loop_free: bool
    non_spontaneous: bool
    problems: List[str] = field(default_factory=list)

    @property
    def is_well_formed(self) -> bool:
        return self.self_loop_free and self.non_spontaneous


def check_well_formed(srp: SRP, require_non_spontaneous: bool = True) -> WellFormednessReport:
    """Check the two well-formedness properties of an SRP instance.

    Non-spontaneity is checked by evaluating ``trans(e, None)`` on every
    edge, which is exact for the transfer functions built in this library
    (they branch only on the attribute supplied).
    """
    problems: List[str] = []

    self_loop_free = not srp.graph.has_self_loop()
    if not self_loop_free:
        loops = [(u, v) for u, v in srp.graph.edges if u == v]
        problems.append(f"graph contains self loops: {loops}")

    non_spontaneous = True
    if require_non_spontaneous:
        for edge in srp.graph.edges:
            if srp.transfer(edge, None) is not None:
                non_spontaneous = False
                problems.append(f"edge {edge} spontaneously generates a route")
                break
    return WellFormednessReport(
        self_loop_free=self_loop_free,
        non_spontaneous=non_spontaneous if require_non_spontaneous else True,
        problems=problems,
    )


def assert_well_formed(srp: SRP, require_non_spontaneous: bool = True) -> None:
    """Raise ``ValueError`` if the SRP is not well-formed."""
    report = check_well_formed(srp, require_non_spontaneous=require_non_spontaneous)
    if not report.is_well_formed:
        raise ValueError("SRP is not well-formed: " + "; ".join(report.problems))
