"""Access control lists (§6, Practical Extensions).

ACLs filter *data* packets on interfaces; they do not change which routes a
router learns, but they do change where traffic can actually flow.  Bonsai
conservatively folds the ACL (with respect to the destination under
analysis) into the per-interface policy so that two routers are only merged
when their ACLs treat the destination identically, preserving
fwd-equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.config.prefix import Prefix


@dataclass(frozen=True)
class AclLine:
    """One line of an ACL: permit or deny a destination prefix range."""

    action: str
    prefix: Prefix

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise ValueError(f"invalid ACL action {self.action!r}")

    def matches(self, destination: Prefix) -> bool:
        """True if the line applies to traffic towards ``destination``."""
        return self.prefix.contains(destination) or destination.contains(self.prefix)


@dataclass(frozen=True)
class Acl:
    """A named, ordered access list (first match wins, implicit deny)."""

    name: str
    lines: Tuple[AclLine, ...] = ()
    #: Real ACLs end in an implicit deny; tests sometimes want permit-any
    #: semantics, so the default action is configurable.
    default_action: str = "deny"

    def __post_init__(self) -> None:
        if self.default_action not in ("permit", "deny"):
            raise ValueError(f"invalid ACL default action {self.default_action!r}")

    def permits(self, destination: Prefix) -> bool:
        """Whether traffic to ``destination`` is allowed through this ACL."""
        for line in self.lines:
            if line.matches(destination):
                return line.action == "permit"
        return self.default_action == "permit"


#: An ACL that allows all traffic (absence of filtering).
PERMIT_ALL_ACL = Acl(name="PERMIT-ALL", lines=(), default_action="permit")
