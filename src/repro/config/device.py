"""Per-device configuration (vendor-independent IR).

A :class:`DeviceConfig` is the Batfish-style intermediate representation of
one router's configuration: its BGP process (neighbours with import/export
route maps and originated networks), OSPF links, static routes, and the
route maps / community lists / prefix lists / ACLs they reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.config.acl import Acl
from repro.config.prefix import Prefix
from repro.config.routemap import CommunityList, PrefixList, RouteMap
from repro.routing.attributes import DEFAULT_LOCAL_PREF


class ConfigError(Exception):
    """Raised for inconsistent device configurations."""


@dataclass
class BgpNeighborConfig:
    """A BGP session towards ``peer`` with optional per-direction policy."""

    peer: str
    import_policy: Optional[str] = None
    export_policy: Optional[str] = None
    #: iBGP sessions share the local AS; eBGP sessions (the default) do not.
    ibgp: bool = False


@dataclass
class StaticRouteConfig:
    """A static route: traffic to ``prefix`` leaves via ``next_hop``.

    ``next_hop`` of ``None`` models a discard (``Null0``) route.
    """

    prefix: Prefix
    next_hop: Optional[str] = None


@dataclass
class OspfLinkConfig:
    """An OSPF adjacency towards ``peer`` with a link cost and area."""

    peer: str
    cost: int = 1
    area: int = 0


@dataclass
class DeviceConfig:
    """The full configuration of one device."""

    name: str
    asn: Optional[str] = None
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    community_lists: Dict[str, CommunityList] = field(default_factory=dict)
    prefix_lists: Dict[str, PrefixList] = field(default_factory=dict)
    acls: Dict[str, Acl] = field(default_factory=dict)
    bgp_neighbors: Dict[str, BgpNeighborConfig] = field(default_factory=dict)
    ospf_links: Dict[str, OspfLinkConfig] = field(default_factory=dict)
    static_routes: List[StaticRouteConfig] = field(default_factory=list)
    originated_prefixes: List[Prefix] = field(default_factory=list)
    #: Outbound data-plane ACL per neighbouring interface (peer name -> ACL name).
    interface_acls: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.asn is None:
            self.asn = self.name

    # ------------------------------------------------------------------
    # Referential integrity
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Return a list of dangling references (empty when consistent)."""
        problems: List[str] = []
        for neighbor in self.bgp_neighbors.values():
            for policy in (neighbor.import_policy, neighbor.export_policy):
                if policy is not None and policy not in self.route_maps:
                    problems.append(f"{self.name}: missing route-map {policy!r}")
        for route_map in self.route_maps.values():
            for name in route_map.referenced_community_lists():
                if name not in self.community_lists:
                    problems.append(f"{self.name}: missing community-list {name!r}")
            for name in route_map.referenced_prefix_lists():
                if name not in self.prefix_lists:
                    problems.append(f"{self.name}: missing prefix-list {name!r}")
        for peer, acl in self.interface_acls.items():
            if acl not in self.acls:
                problems.append(f"{self.name}: missing ACL {acl!r} on interface to {peer}")
        return problems

    def assert_valid(self) -> None:
        problems = self.validate()
        if problems:
            raise ConfigError("; ".join(problems))

    # ------------------------------------------------------------------
    # Derived views used by Bonsai
    # ------------------------------------------------------------------
    def originates(self, prefix: Prefix) -> bool:
        """True if this device originates a route covering ``prefix``."""
        return any(own.contains(prefix) for own in self.originated_prefixes)

    def local_pref_values(self) -> FrozenSet[int]:
        """All local-preference values any import policy can assign, plus the
        default (Theorem 4.4's ``prefs``)."""
        values: Set[int] = {DEFAULT_LOCAL_PREF}
        for neighbor in self.bgp_neighbors.values():
            if neighbor.import_policy and neighbor.import_policy in self.route_maps:
                values |= self.route_maps[neighbor.import_policy].local_pref_values()
        return frozenset(values)

    def matched_communities(self) -> FrozenSet[str]:
        """Community values this device's policies *match on*."""
        values: Set[str] = set()
        for route_map in self.route_maps.values():
            values |= route_map.matched_communities(self.community_lists)
        return frozenset(values)

    def set_communities(self) -> FrozenSet[str]:
        """Community values this device's policies can attach."""
        values: Set[str] = set()
        for route_map in self.route_maps.values():
            values |= route_map.set_community_values()
        return frozenset(values)

    def referenced_prefixes(self) -> FrozenSet[Prefix]:
        """All prefixes mentioned anywhere in the configuration."""
        prefixes: Set[Prefix] = set(self.originated_prefixes)
        for static in self.static_routes:
            prefixes.add(static.prefix)
        for prefix_list in self.prefix_lists.values():
            prefixes.update(entry.prefix for entry in prefix_list.entries)
        for acl in self.acls.values():
            prefixes.update(line.prefix for line in acl.lines)
        return frozenset(prefixes)

    def static_route_for(self, prefix: Prefix) -> Optional[StaticRouteConfig]:
        """The longest-match static route covering ``prefix``, if any."""
        best: Optional[StaticRouteConfig] = None
        for static in self.static_routes:
            if static.prefix.contains(prefix):
                if best is None or static.prefix.length > best.prefix.length:
                    best = static
        return best

    def config_line_count(self) -> int:
        """A rough count of configuration lines (used for reporting only)."""
        lines = 1 + len(self.originated_prefixes) + len(self.static_routes)
        lines += 2 * len(self.bgp_neighbors) + len(self.ospf_links)
        for route_map in self.route_maps.values():
            lines += 1 + 3 * len(route_map.clauses)
        for community_list in self.community_lists.values():
            lines += len(community_list.communities)
        for prefix_list in self.prefix_lists.values():
            lines += len(prefix_list.entries)
        for acl in self.acls.values():
            lines += 1 + len(acl.lines)
        return lines
