"""A configured network: topology plus per-device configurations.

This is the unit Bonsai operates on: the concrete network whose control
plane is to be compressed.  It bundles the physical topology with the
:class:`~repro.config.device.DeviceConfig` of every device and provides
the whole-network views the compression pipeline needs (community
universe, unused communities, referenced prefixes, destination equivalence
classes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.config.device import ConfigError, DeviceConfig
from repro.config.prefix import Prefix, PrefixTrie
from repro.topology.graph import Graph, Node


@dataclass
class Network:
    """A topology together with the configuration of each device."""

    graph: Graph
    devices: Dict[str, DeviceConfig] = field(default_factory=dict)
    name: str = "network"

    def __post_init__(self) -> None:
        for node in self.graph.nodes:
            if node not in self.devices:
                self.devices[node] = DeviceConfig(name=str(node))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Dangling references and topology/config mismatches."""
        problems: List[str] = []
        for device in self.devices.values():
            problems.extend(device.validate())
        for name, device in self.devices.items():
            if not self.graph.has_node(name):
                problems.append(f"device {name!r} is configured but not in the topology")
                continue
            neighbours = self.graph.successors(name)
            for peer in device.bgp_neighbors:
                if peer not in neighbours:
                    problems.append(f"{name}: BGP neighbour {peer!r} is not adjacent")
            for peer in device.ospf_links:
                if peer not in neighbours:
                    problems.append(f"{name}: OSPF link to {peer!r} is not adjacent")
        return problems

    def assert_valid(self) -> None:
        problems = self.validate()
        if problems:
            raise ConfigError("; ".join(problems))

    # ------------------------------------------------------------------
    # Whole-network views
    # ------------------------------------------------------------------
    def device(self, name: Node) -> DeviceConfig:
        return self.devices[name]

    def num_devices(self) -> int:
        return len(self.devices)

    def community_universe(self) -> FrozenSet[str]:
        """Every community value mentioned (matched or set) anywhere."""
        values: Set[str] = set()
        for device in self.devices.values():
            values |= device.matched_communities()
            values |= device.set_communities()
        return frozenset(values)

    def unused_communities(self) -> FrozenSet[str]:
        """Communities that are attached somewhere but never matched on.

        The paper's real-network evaluation (§8) found that many apparent
        role differences came from such irrelevant tags; the BGP attribute
        abstraction strips them before comparing policies.
        """
        matched: Set[str] = set()
        attached: Set[str] = set()
        for device in self.devices.values():
            matched |= device.matched_communities()
            attached |= device.set_communities()
        return frozenset(attached - matched)

    def referenced_prefixes(self) -> FrozenSet[Prefix]:
        prefixes: Set[Prefix] = set()
        for device in self.devices.values():
            prefixes |= device.referenced_prefixes()
        return frozenset(prefixes)

    def originators_of(self, prefix: Prefix) -> Set[str]:
        """Devices originating a route that covers ``prefix``."""
        return {name for name, device in self.devices.items() if device.originates(prefix)}

    def total_config_lines(self) -> int:
        """Approximate total configuration size (for reporting)."""
        return sum(device.config_line_count() for device in self.devices.values())

    def local_pref_values_by_device(self) -> Dict[str, Tuple[int, ...]]:
        """Per-device sorted local-preference value tuples, memoised.

        ``build_srp_from_network`` needs these for every destination class,
        but they only depend on the route maps and session attachments; the
        memo is invalidated by a fingerprint over those inputs, like the
        destination class cache.  A hit still pays the O(devices +
        sessions + route maps) fingerprint construction -- much cheaper
        than re-deriving the values (which walks every clause), but not
        free on very large configurations.
        """
        fingerprint = (
            self._topology_stamp(),
            tuple(
                (
                    name,
                    tuple(
                        (peer, neighbor.import_policy)
                        for peer, neighbor in device.bgp_neighbors.items()
                    ),
                    tuple(
                        (rm_name, route_map.clauses)
                        for rm_name, route_map in device.route_maps.items()
                    ),
                )
                for name, device in self.devices.items()
            ),
        )
        cached = getattr(self, "_lp_cache", None)
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        values = {
            name: tuple(sorted(device.local_pref_values()))
            for name, device in self.devices.items()
        }
        self._lp_cache = (fingerprint, values)
        return values

    def _topology_stamp(self) -> Tuple[int, int, int]:
        """A cheap topology component for the memo fingerprints.

        The graph's mutation counter (plus the sizes, which also guard
        against a caller swapping in a *different* graph object) makes
        removing an edge or node -- a failure scenario applied by mutation
        rather than through the non-mutating views in
        :mod:`repro.failures.scenario` -- invalidate the memoised
        whole-network views instead of serving stale entries.
        """
        return (self.graph.version, self.graph.num_nodes(), self.graph.num_edges())

    # ------------------------------------------------------------------
    # Destination equivalence classes (§5.1)
    # ------------------------------------------------------------------
    def _destination_fingerprint(self) -> Tuple:
        """A cheap value summarising every input to the destination trie.

        The memoised :meth:`destination_equivalence_classes` is invalidated
        by comparing fingerprints, so mutating a device's originations or
        static routes -- or the topology itself (removing an edge bumps the
        graph's mutation counter) -- transparently recomputes the classes
        while repeated calls on an unchanged network (one per class task,
        per solver invocation, ...) are free.
        """
        return (
            self._topology_stamp(),
            tuple(
                (
                    name,
                    tuple(device.originated_prefixes),
                    tuple(static.prefix for static in device.static_routes),
                )
                for name, device in self.devices.items()
            ),
        )

    def destination_trie(self) -> PrefixTrie:
        """A prefix trie of every originated prefix with its origin devices."""
        trie = PrefixTrie()
        for name, device in self.devices.items():
            for prefix in device.originated_prefixes:
                trie.insert(prefix, origins=[name])
            for static in device.static_routes:
                # A static route's destination is routable even if nobody
                # originates it dynamically; record it with no origin so it
                # still forms a class.
                trie.insert(static.prefix)
        return trie

    def destination_equivalence_classes(self) -> List[Tuple[Prefix, Set[str]]]:
        """The per-destination classes Bonsai builds one abstraction for.

        Memoised: the prefix trie is only re-derived when the fingerprint
        of the originated prefixes / static routes changes (the pipeline
        and the batch verifier call this once per class task, previously
        rebuilding the same trie every time).
        """
        fingerprint = self._destination_fingerprint()
        cached = getattr(self, "_dec_cache", None)
        if cached is not None and cached[0] == fingerprint:
            classes = cached[1]
        else:
            classes = [
                (prefix, frozenset(origins))
                for prefix, origins in self.destination_trie().equivalence_classes()
            ]
            self._dec_cache = (fingerprint, classes)
        # Hand out fresh mutable origin sets so callers cannot corrupt the
        # cache (the uncached implementation returned fresh sets too).
        return [(prefix, set(origins)) for prefix, origins in classes]

    # ------------------------------------------------------------------
    # Topology statistics used in the evaluation tables
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "nodes": self.graph.num_nodes(),
            "edges": self.graph.num_undirected_edges(),
            "directed_edges": self.graph.num_edges(),
            "config_lines": self.total_config_lines(),
            "equivalence_classes": len(self.destination_equivalence_classes()),
        }
