"""Compile device configurations into SRP instances.

This module is the bridge between the vendor-independent configuration IR
(:mod:`repro.config`) and the SRP theory (:mod:`repro.srp`): given a
:class:`~repro.config.network.Network` and a destination equivalence class
(a prefix plus its originating devices), it builds the concrete SRP whose
transfer functions implement the configured route maps, static routes, OSPF
links and ACLs for that destination.

It also produces *specialized syntactic policy keys* for every edge: a
canonical, hashable summary of the edge's policy with respect to the
destination.  These keys are a drop-in alternative to the BDD keys from
:mod:`repro.bdd.policy` (the BDD keys are canonical semantically, the
syntactic keys only structurally; the ablation benchmark compares the two).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.config.device import DeviceConfig
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import RouteMap
from repro.routing.attributes import (
    DEFAULT_LOCAL_PREF,
    NO_ROUTE,
    BgpAttribute,
    RibAttribute,
    StaticAttribute,
)
from repro.routing.bgp import BgpProtocol
from repro.routing.multiprotocol import MultiProtocol
from repro.routing.ospf import OspfProtocol
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node

#: Name of the virtual destination node added when several devices
#: originate the same prefix (the SRP needs a single destination vertex).
VIRTUAL_DESTINATION = "__dest__"


# ----------------------------------------------------------------------
# Route-map specialization
# ----------------------------------------------------------------------
def specialize_route_map(
    route_map: Optional[RouteMap],
    device: DeviceConfig,
    destination: Prefix,
    ignore_communities: FrozenSet[str] = frozenset(),
) -> Tuple:
    """A canonical key describing ``route_map``'s behaviour for ``destination``.

    Prefix-list matches are evaluated against the destination (clauses that
    cannot match are dropped; satisfied matches are removed), community-list
    names are replaced by their value sets, and communities in
    ``ignore_communities`` are stripped from set actions.  Two route maps
    with equal keys behave identically for this destination.
    """
    if route_map is None:
        return ("permit-all",)
    clauses: List[Tuple] = []
    for clause in route_map.clauses:
        if clause.match_prefix_lists:
            permitted = any(
                device.prefix_lists[name].permits(destination)
                for name in clause.match_prefix_lists
                if name in device.prefix_lists
            )
            if not permitted:
                # This clause can never match announcements for the
                # destination; skip it entirely.
                continue
        community_values = frozenset(
            value
            for name in clause.match_community_lists
            if name in device.community_lists
            for value in device.community_lists[name].communities
        )
        clauses.append(
            (
                clause.action,
                community_values if clause.match_community_lists else None,
                clause.set_local_pref,
                frozenset(clause.set_communities) - ignore_communities,
                frozenset(clause.delete_communities),
                clause.prepend_as,
            )
        )
        if clause.action == "permit" and not clause.match_community_lists:
            # An unconditional permit terminates evaluation for every
            # announcement; later clauses are unreachable.
            break
        if clause.action == "deny" and not clause.match_community_lists:
            break
    return tuple(clauses) if clauses else ("deny-all",)


def evaluate_route_map(
    route_map: Optional[RouteMap],
    device: DeviceConfig,
    attribute: BgpAttribute,
    destination: Prefix,
) -> Optional[BgpAttribute]:
    """Run a (possibly absent) route map on an announcement."""
    if route_map is None:
        return attribute
    return route_map.evaluate(
        attribute,
        destination,
        device.community_lists,
        device.prefix_lists,
        device.asn or device.name,
    )


# ----------------------------------------------------------------------
# Per-edge compilation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompiledEdge:
    """Everything the transfer function needs to know about one edge.

    The edge is ``(u, v)`` in SRP orientation: routes flow from the
    neighbour ``v`` to the node ``u``; data traffic forwarded over this
    choice flows from ``u`` to ``v``.
    """

    edge: Edge
    has_bgp: bool = False
    ibgp: bool = False
    export_map: Optional[RouteMap] = None
    import_map: Optional[RouteMap] = None
    has_ospf: bool = False
    ospf_cost: int = 1
    has_static: bool = False
    acl_permits: bool = True

    @property
    def receiver(self) -> Node:
        return self.edge[0]

    @property
    def sender(self) -> Node:
        return self.edge[1]


def compile_base_edges(network: Network) -> Dict[Edge, CompiledEdge]:
    """Compile the destination-*independent* part of every directed edge.

    Everything about an edge except its static route and interface-ACL
    verdict (BGP session, route maps, OSPF) is the same for every
    destination, so callers compiling many destinations (Bonsai, the batch
    verifier) build this base once and run the cheap
    :func:`specialize_compiled_edges` per destination.
    """
    compiled: Dict[Edge, CompiledEdge] = {}
    devices = network.devices
    for edge in network.graph.edges:
        receiver, sender = edge
        receiver_cfg = devices[receiver]
        sender_cfg = devices[sender]

        session_in = receiver_cfg.bgp_neighbors.get(sender)
        session_out = sender_cfg.bgp_neighbors.get(receiver) if session_in else None
        has_bgp = session_in is not None and session_out is not None
        ibgp = False
        export_map = import_map = None
        if has_bgp:
            ibgp = session_out.ibgp and session_in.ibgp
            if session_out.export_policy:
                export_map = sender_cfg.route_maps.get(session_out.export_policy)
            if session_in.import_policy:
                import_map = receiver_cfg.route_maps.get(session_in.import_policy)

        has_ospf = sender in receiver_cfg.ospf_links and receiver in sender_cfg.ospf_links
        ospf_cost = receiver_cfg.ospf_links[sender].cost if has_ospf else 1

        compiled[edge] = CompiledEdge(
            edge=edge,
            has_bgp=has_bgp,
            ibgp=ibgp,
            export_map=export_map,
            import_map=import_map,
            has_ospf=has_ospf,
            ospf_cost=ospf_cost,
            has_static=False,
            acl_permits=True,
        )
    return compiled


def specialize_compiled_edges(
    network: Network, destination: Prefix, base: Dict[Edge, CompiledEdge]
) -> Dict[Edge, CompiledEdge]:
    """Fix up a base compilation for one destination.

    Only edges carrying a matching static route or a configured interface
    ACL differ from the base; everything else is shared, so the per-class
    cost is O(devices + affected edges) instead of O(edges).
    """
    compiled = dict(base)
    graph = network.graph
    for name, device in network.devices.items():
        if not graph.has_node(name):
            continue
        static = device.static_route_for(destination)
        if static is not None:
            edge = (name, static.next_hop)
            info = compiled.get(edge)
            if info is not None:
                compiled[edge] = replace(info, has_static=True)
        for sender, acl_name in device.interface_acls.items():
            acl = device.acls.get(acl_name)
            if acl is None or acl.permits(destination):
                continue
            edge = (name, sender)
            info = compiled.get(edge)
            if info is not None:
                compiled[edge] = replace(info, acl_permits=False)
    return compiled


def compile_edges(network: Network, destination: Prefix) -> Dict[Edge, CompiledEdge]:
    """Compile every directed edge of the network for one destination."""
    return specialize_compiled_edges(network, destination, compile_base_edges(network))


def syntactic_policy_keys(
    network: Network,
    destination: Prefix,
    compiled: Optional[Dict[Edge, CompiledEdge]] = None,
    ignore_communities: Optional[FrozenSet[str]] = None,
    specialize_cache: Optional[Dict] = None,
) -> Dict[Edge, Hashable]:
    """Canonical per-edge policy keys based on specialized configuration text.

    ``specialize_cache`` optionally memoises :func:`specialize_route_map`
    results per ``(route-map identity, device identity)``.  The caller
    owns the dict and must scope it to one ``(destination,
    ignore_communities)`` pair -- and keep the networks it keys alive for
    the cache's lifetime, since identity is by ``id()``.  Both identities
    matter: specialization also reads the device's prefix lists, and a
    copy-on-write edit (same device name, new object) must miss rather
    than serve the stale tuple.  Change sweeps use this to key many
    structurally-shared networks without re-specializing the unchanged
    route maps.
    """
    if compiled is None:
        compiled = compile_edges(network, destination)
    if ignore_communities is None:
        ignore_communities = network.unused_communities()

    def specialized(route_map, device: DeviceConfig) -> Tuple:
        if specialize_cache is None:
            return specialize_route_map(route_map, device, destination, ignore_communities)
        key = (id(route_map), id(device))
        result = specialize_cache.get(key)
        if result is None:
            result = specialize_cache[key] = specialize_route_map(
                route_map, device, destination, ignore_communities
            )
        return result

    keys: Dict[Edge, Hashable] = {}
    for edge, info in compiled.items():
        receiver_cfg = network.devices[info.receiver]
        sender_cfg = network.devices[info.sender]
        keys[edge] = (
            info.has_bgp,
            info.ibgp,
            specialized(info.export_map, sender_cfg),
            specialized(info.import_map, receiver_cfg),
            info.has_ospf,
            info.ospf_cost if info.has_ospf else None,
            info.has_static,
            info.acl_permits,
        )
    return keys


# ----------------------------------------------------------------------
# Transfer function
# ----------------------------------------------------------------------
@dataclass
class NetworkTransfer:
    """The transfer function of a configured network for one destination.

    This used to be a closure inside :func:`build_srp_from_network`; it is a
    class so that SRP instances (and the compression results built from
    them) can be pickled and shipped across process boundaries by the
    parallel compression pipeline (:mod:`repro.pipeline`).
    """

    network: Network
    destination: Prefix
    compiled: Dict[Edge, CompiledEdge]
    virtual_edges: FrozenSet[Edge]

    #: Sentinel for memoised "route map dropped the announcement".
    _DROPPED = object()

    #: Bound on the route-map evaluation memo.  One destination's solve
    #: sees a bounded announcement universe, but failure sweeps drive one
    #: transfer through thousands of scenario re-solves; on overflow the
    #: memo is cleared wholesale (the ``BddManager.ite`` precedent --
    #: correctness is unaffected, only hit rates).
    EVAL_CACHE_LIMIT = 100_000

    def __getstate__(self):
        state = self.__dict__.copy()
        for transient in ("_eval_cache", "_eval_hits", "_eval_misses", "_eval_overflows"):
            state.pop(transient, None)
        return state

    def eval_cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the route-map evaluation memo."""
        return {
            "size": len(self.__dict__.get("_eval_cache") or ()),
            "limit": self.EVAL_CACHE_LIMIT,
            "hits": self.__dict__.get("_eval_hits", 0),
            "misses": self.__dict__.get("_eval_misses", 0),
            "overflows": self.__dict__.get("_eval_overflows", 0),
        }

    def _evaluate_cached(self, route_map, device, attribute, tag: str):
        """Memoised :func:`evaluate_route_map` (bounded, clear-on-overflow).

        Route maps are pure functions of (map, device lists, announcement,
        destination); the destination is fixed per transfer instance and
        the map/device pair is identified by the device name plus map
        identity, so the same announcement traversing the same policy on
        several parallel edges is evaluated once.
        """
        state = self.__dict__
        cache = state.get("_eval_cache")
        if cache is None:
            cache = state["_eval_cache"] = {}
            state.setdefault("_eval_hits", 0)
            state.setdefault("_eval_misses", 0)
            state.setdefault("_eval_overflows", 0)
        key = (tag, id(route_map), device.name, attribute)
        try:
            result = cache[key]
        except KeyError:
            result = route_map.evaluate(
                attribute,
                self.destination,
                device.community_lists,
                device.prefix_lists,
                device.asn or device.name,
            )
            state["_eval_misses"] += 1
            if len(cache) >= self.EVAL_CACHE_LIMIT:
                cache.clear()
                state["_eval_overflows"] += 1
            cache[key] = self._DROPPED if result is None else result
            return result
        except TypeError:
            return evaluate_route_map(route_map, device, attribute, self.destination)
        state["_eval_hits"] += 1
        return None if result is self._DROPPED else result

    def __call__(
        self, edge: Edge, attribute: Optional[RibAttribute]
    ) -> Optional[RibAttribute]:
        if edge in self.virtual_edges:
            # Links to the virtual destination simply hand out the initial
            # announcement to each true originator.
            if attribute is None:
                return NO_ROUTE
            return attribute

        info = self.compiled.get(edge)
        if info is None:
            return NO_ROUTE
        receiver, sender = edge
        receiver_cfg = self.network.devices[receiver]
        sender_cfg = self.network.devices[sender]

        static_attr = StaticAttribute() if info.has_static else None

        bgp_attr = None
        ospf_attr = None
        if attribute is not None:
            if info.has_ospf and attribute.ospf is not None:
                ospf_attr = attribute.ospf.with_added_cost(info.ospf_cost)
            if info.has_bgp and attribute.bgp is not None:
                if info.export_map is None:
                    outgoing = attribute.bgp
                else:
                    outgoing = self._evaluate_cached(
                        info.export_map, sender_cfg, attribute.bgp, "out"
                    )
                if outgoing is not None:
                    receiver_asn = receiver_cfg.asn or str(receiver)
                    sender_asn = sender_cfg.asn or str(sender)
                    if info.ibgp:
                        # iBGP: no AS-path change and no AS-based loop
                        # check, but the receiver ranks the route below
                        # eBGP-learned ties (BgpAttribute.ibgp_learned).
                        incoming = outgoing.via_ibgp()
                    elif outgoing.contains_as(receiver_asn):
                        incoming = None
                    else:
                        incoming = outgoing.prepended(sender_asn)
                    if incoming is not None:
                        if info.import_map is None:
                            bgp_attr = incoming
                        else:
                            bgp_attr = self._evaluate_cached(
                                info.import_map, receiver_cfg, incoming, "in"
                            )

        if static_attr is None and bgp_attr is None and ospf_attr is None:
            return NO_ROUTE
        # best_protocol() by administrative distance, inlined (static 1 <
        # ebgp 20 < ospf 110) to avoid building a throwaway RibAttribute.
        if static_attr is not None:
            chosen = "static"
        elif bgp_attr is not None:
            chosen = "ebgp"
        else:
            chosen = "ospf"
        return RibAttribute(
            bgp=bgp_attr,
            ospf=ospf_attr,
            static=static_attr,
            chosen=chosen,
        )


# ----------------------------------------------------------------------
# SRP construction
# ----------------------------------------------------------------------
def _destination_node(
    graph: Graph, origins: Set[Node]
) -> Tuple[Graph, Node, Set[Edge]]:
    """Pick (or synthesise) the single SRP destination vertex.

    With one originating device that device is the destination.  With
    several, a virtual node is attached below all of them so that the SRP
    still has a unique root; the added edges are returned so the transfer
    function can treat them as plain announcements.
    """
    if len(origins) == 1:
        return graph, next(iter(origins)), set()
    g = graph.copy()
    g.add_node(VIRTUAL_DESTINATION)
    virtual_edges: Set[Edge] = set()
    for origin in origins:
        g.add_edge(origin, VIRTUAL_DESTINATION)
        virtual_edges.add((origin, VIRTUAL_DESTINATION))
    return g, VIRTUAL_DESTINATION, virtual_edges


def build_srp_from_network(
    network: Network,
    destination: Prefix,
    origins: Optional[Set[Node]] = None,
    ignore_communities: Optional[FrozenSet[str]] = None,
    compiled: Optional[Dict[Edge, CompiledEdge]] = None,
    include_syntactic_keys: bool = True,
) -> SRP:
    """Build the concrete SRP for one destination equivalence class.

    The resulting SRP uses multi-protocol RIB attributes
    (:class:`~repro.routing.attributes.RibAttribute`) so that BGP, OSPF and
    static routes coexist exactly as described in §6.

    ``compiled`` lets a caller that has already run
    :func:`compile_edges` for this destination (e.g. Bonsai, which also
    needs the compiled edges for BDD specialization) share the result
    instead of recompiling.  ``include_syntactic_keys=False`` skips the
    specialized syntactic policy keys entirely (only the virtual
    destination edges keep a key); callers that just *solve* the SRP --
    the data-plane simulation behind the verifiers -- never read them, and
    computing the keys costs as much as a full solver round.
    """
    if origins is None:
        origins = network.originators_of(destination)
    if not origins:
        raise ValueError(f"no device originates {destination}")
    if ignore_communities is None:
        ignore_communities = network.unused_communities()

    graph, dest_node, virtual_edges = _destination_node(network.graph, set(origins))
    if compiled is None:
        compiled = compile_edges(network, destination)
    protocol = MultiProtocol()
    bgp = BgpProtocol(unused_communities=ignore_communities)
    ospf = OspfProtocol()

    transfer = NetworkTransfer(
        network=network,
        destination=destination,
        compiled=compiled,
        virtual_edges=frozenset(virtual_edges),
    )

    edge_policies: Dict[Edge, Hashable] = (
        dict(syntactic_policy_keys(network, destination, compiled, ignore_communities))
        if include_syntactic_keys
        else {}
    )
    for edge in virtual_edges:
        edge_policies[edge] = ("virtual-destination",)

    lp_values = network.local_pref_values_by_device()
    node_prefs: Dict[Node, tuple] = {}
    for node in graph.nodes:
        if node == VIRTUAL_DESTINATION:
            node_prefs[node] = (DEFAULT_LOCAL_PREF,)
            continue
        node_prefs[node] = lp_values[node]

    initial = RibAttribute(
        bgp=bgp.initial_attribute(dest_node),
        ospf=ospf.initial_attribute(dest_node),
        static=None,
        chosen="ebgp",
    )

    return SRP(
        graph=graph,
        destination=dest_node,
        initial=initial,
        prefer=protocol.prefer,
        transfer=transfer,
        protocol=protocol,
        edge_policies=edge_policies,
        node_prefs=node_prefs,
    )
