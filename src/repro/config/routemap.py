"""Route maps, community lists and prefix lists (vendor-independent IR).

These classes model the configuration primitives the paper's example in
Figure 10 uses::

    ip community-list dept permit 65001:1
    ip community-list dept permit 65001:2
    route-map M 10
      match community dept
      set community 65001:3 additive
      set local-preference 350

A :class:`RouteMap` is an ordered list of clauses; the first clause whose
match conditions all hold determines the outcome (permit with its actions
applied, or deny).  A route matching no clause is dropped, mirroring the
implicit deny of real route maps.

Route maps operate on :class:`~repro.routing.attributes.BgpAttribute`
values together with the destination prefix of the announcement (the SRP
is per destination, so the prefix is supplied separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.config.prefix import Prefix
from repro.routing.attributes import BgpAttribute


@dataclass(frozen=True)
class CommunityList:
    """A named list of community values (all entries are permits)."""

    name: str
    communities: Tuple[str, ...] = ()

    def matches(self, attribute: BgpAttribute) -> bool:
        """True if the announcement carries any listed community."""
        return any(community in attribute.communities for community in self.communities)


@dataclass(frozen=True)
class PrefixListEntry:
    """One ``ip prefix-list`` line.

    Matches destination prefixes covered by ``prefix`` whose length is
    within ``[ge, le]``; both bounds default to the entry's own length
    (exact match), as on real routers.
    """

    prefix: Prefix
    action: str = "permit"
    ge: Optional[int] = None
    le: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise ValueError(f"invalid prefix-list action {self.action!r}")

    def matches(self, destination: Prefix) -> bool:
        low = self.ge if self.ge is not None else self.prefix.length
        high = self.le if self.le is not None else (
            self.ge if self.ge is not None else self.prefix.length
        )
        if self.le is not None:
            high = self.le
        if not self.prefix.contains(destination):
            return False
        return low <= destination.length <= high


@dataclass(frozen=True)
class PrefixList:
    """A named, ordered list of prefix-list entries (first match wins)."""

    name: str
    entries: Tuple[PrefixListEntry, ...] = ()

    def permits(self, destination: Prefix) -> bool:
        """True if the first matching entry permits ``destination``.

        A destination matching no entry is denied (implicit deny).
        """
        for entry in self.entries:
            if entry.matches(destination):
                return entry.action == "permit"
        return False


@dataclass(frozen=True)
class RouteMapClause:
    """One numbered clause of a route map."""

    sequence: int
    action: str = "permit"
    #: Match if the route carries a community in *any* of these lists.
    match_community_lists: Tuple[str, ...] = ()
    #: Match if the destination prefix is permitted by *any* of these lists.
    match_prefix_lists: Tuple[str, ...] = ()
    set_local_pref: Optional[int] = None
    set_communities: Tuple[str, ...] = ()
    delete_communities: Tuple[str, ...] = ()
    prepend_as: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise ValueError(f"invalid route-map action {self.action!r}")
        if self.prepend_as < 0:
            raise ValueError("prepend count cannot be negative")

    def matches(
        self,
        attribute: BgpAttribute,
        destination: Prefix,
        community_lists: Dict[str, CommunityList],
        prefix_lists: Dict[str, PrefixList],
    ) -> bool:
        """Whether every match condition of this clause holds."""
        if self.match_community_lists:
            if not any(
                community_lists[name].matches(attribute)
                for name in self.match_community_lists
                if name in community_lists
            ):
                return False
        if self.match_prefix_lists:
            if not any(
                prefix_lists[name].permits(destination)
                for name in self.match_prefix_lists
                if name in prefix_lists
            ):
                return False
        return True

    def apply_actions(self, attribute: BgpAttribute, asn: str) -> BgpAttribute:
        """Apply the clause's set/prepend actions to a permitted route."""
        result = attribute
        if self.set_local_pref is not None:
            result = result.with_local_pref(self.set_local_pref)
        for community in self.set_communities:
            result = result.with_community(community)
        for community in self.delete_communities:
            result = result.without_community(community)
        for _ in range(self.prepend_as):
            result = result.prepended(asn)
        return result


@dataclass(frozen=True)
class RouteMap:
    """A named, ordered collection of clauses."""

    name: str
    clauses: Tuple[RouteMapClause, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.clauses, key=lambda clause: clause.sequence))
        object.__setattr__(self, "clauses", ordered)

    def evaluate(
        self,
        attribute: BgpAttribute,
        destination: Prefix,
        community_lists: Dict[str, CommunityList],
        prefix_lists: Dict[str, PrefixList],
        asn: str,
    ) -> Optional[BgpAttribute]:
        """Run the route map; ``None`` means the route is denied."""
        for clause in self.clauses:
            if clause.matches(attribute, destination, community_lists, prefix_lists):
                if clause.action == "deny":
                    return None
                return clause.apply_actions(attribute, asn)
        return None

    def local_pref_values(self) -> FrozenSet[int]:
        """Local-preference values this route map can assign."""
        return frozenset(
            clause.set_local_pref
            for clause in self.clauses
            if clause.action == "permit" and clause.set_local_pref is not None
        )

    def referenced_community_lists(self) -> FrozenSet[str]:
        return frozenset(
            name for clause in self.clauses for name in clause.match_community_lists
        )

    def referenced_prefix_lists(self) -> FrozenSet[str]:
        return frozenset(
            name for clause in self.clauses for name in clause.match_prefix_lists
        )

    def matched_communities(self, community_lists: Dict[str, CommunityList]) -> FrozenSet[str]:
        """All community values this route map can *match on* (not set)."""
        values = set()
        for name in self.referenced_community_lists():
            if name in community_lists:
                values.update(community_lists[name].communities)
        return frozenset(values)

    def set_community_values(self) -> FrozenSet[str]:
        """All community values this route map can attach."""
        return frozenset(
            community for clause in self.clauses for community in clause.set_communities
        )


#: A route map that accepts everything unchanged (handy default).
PERMIT_ALL = RouteMap(name="PERMIT-ALL", clauses=(RouteMapClause(sequence=10, action="permit"),))

#: A route map that denies everything.
DENY_ALL = RouteMap(name="DENY-ALL", clauses=(RouteMapClause(sequence=10, action="deny"),))
