"""A small text format for configured networks, with parser and printer.

The original Bonsai consumes real vendor configurations through Batfish.
That frontend is out of scope here, but a textual format is still useful:
it lets examples and tests describe networks declaratively and it exercises
the same IR the generators produce.  The format is line-based and loosely
Cisco-flavoured::

    device r1
      asn 65001
      network 10.0.1.0/24
      static-route 10.9.0.0/16 next-hop r2
      ospf-link r2 cost 10 area 0
      bgp-neighbor r2 import IMPORT-R2 export EXPORT-R2
      community-list dept 65001:1 65001:2
      prefix-list OWN permit 10.0.1.0/24
      route-map IMPORT-R2 10 permit
        match community dept
        set community 65001:3
        set local-preference 350
      route-map IMPORT-R2 20 permit
      acl BLOCK-WEB deny 10.1.0.0/16 default permit
      interface-acl r2 BLOCK-WEB

    link r1 r2

Blank lines and ``#`` comments are ignored.  ``link`` lines add an
undirected edge (both directions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.acl import Acl, AclLine
from repro.config.device import (
    BgpNeighborConfig,
    DeviceConfig,
    OspfLinkConfig,
    StaticRouteConfig,
)
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import (
    CommunityList,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.topology.graph import Graph


class ParseError(Exception):
    """Raised on malformed network description text."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_keyword_args(tokens: List[str]) -> Dict[str, str]:
    """Parse alternating ``key value`` pairs into a dictionary."""
    if len(tokens) % 2 != 0:
        raise ValueError("expected alternating key/value pairs")
    return {tokens[i]: tokens[i + 1] for i in range(0, len(tokens), 2)}


def parse_network(text: str, name: str = "network") -> Network:
    """Parse a network description in the format documented above."""
    graph = Graph()
    devices: Dict[str, DeviceConfig] = {}
    current_device: Optional[DeviceConfig] = None
    # Route-map clauses are accumulated as mutable dicts until the whole
    # file is read, because ``match``/``set`` lines follow the clause header.
    pending_clauses: Dict[Tuple[str, str, int], Dict] = {}
    current_clause: Optional[Dict] = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        tokens = line.split()
        keyword = tokens[0]

        try:
            if keyword == "device":
                if len(tokens) != 2:
                    raise ParseError(line_number, "usage: device <name>")
                device_name = tokens[1]
                current_device = devices.setdefault(device_name, DeviceConfig(name=device_name))
                graph.add_node(device_name)
                current_clause = None
                continue

            if keyword == "link":
                if len(tokens) != 3:
                    raise ParseError(line_number, "usage: link <a> <b>")
                graph.add_undirected_edge(tokens[1], tokens[2])
                current_clause = None
                continue

            if current_device is None:
                raise ParseError(line_number, f"{keyword!r} outside a device block")

            if keyword == "asn":
                current_device.asn = tokens[1]
            elif keyword == "network":
                current_device.originated_prefixes.append(Prefix.parse(tokens[1]))
            elif keyword == "static-route":
                args = _parse_keyword_args(tokens[2:])
                next_hop = args.get("next-hop")
                current_device.static_routes.append(
                    StaticRouteConfig(prefix=Prefix.parse(tokens[1]), next_hop=next_hop)
                )
            elif keyword == "ospf-link":
                args = _parse_keyword_args(tokens[2:])
                current_device.ospf_links[tokens[1]] = OspfLinkConfig(
                    peer=tokens[1],
                    cost=int(args.get("cost", "1")),
                    area=int(args.get("area", "0")),
                )
            elif keyword == "bgp-neighbor":
                args = _parse_keyword_args(tokens[2:])
                current_device.bgp_neighbors[tokens[1]] = BgpNeighborConfig(
                    peer=tokens[1],
                    import_policy=args.get("import"),
                    export_policy=args.get("export"),
                    ibgp=args.get("session", "ebgp") == "ibgp",
                )
            elif keyword == "community-list":
                current_device.community_lists[tokens[1]] = CommunityList(
                    name=tokens[1], communities=tuple(tokens[2:])
                )
            elif keyword == "prefix-list":
                action = tokens[2]
                prefix = Prefix.parse(tokens[3])
                extra = _parse_keyword_args(tokens[4:])
                entry = PrefixListEntry(
                    prefix=prefix,
                    action=action,
                    ge=int(extra["ge"]) if "ge" in extra else None,
                    le=int(extra["le"]) if "le" in extra else None,
                )
                existing = current_device.prefix_lists.get(tokens[1])
                entries = (existing.entries if existing else ()) + (entry,)
                current_device.prefix_lists[tokens[1]] = PrefixList(
                    name=tokens[1], entries=entries
                )
            elif keyword == "route-map":
                map_name, sequence, action = tokens[1], int(tokens[2]), tokens[3]
                current_clause = {
                    "sequence": sequence,
                    "action": action,
                    "match_community_lists": [],
                    "match_prefix_lists": [],
                    "set_local_pref": None,
                    "set_communities": [],
                    "delete_communities": [],
                    "prepend_as": 0,
                }
                pending_clauses[(current_device.name, map_name, sequence)] = current_clause
            elif keyword == "match":
                if current_clause is None:
                    raise ParseError(line_number, "match outside a route-map clause")
                if tokens[1] == "community":
                    current_clause["match_community_lists"].extend(tokens[2:])
                elif tokens[1] == "prefix-list":
                    current_clause["match_prefix_lists"].extend(tokens[2:])
                else:
                    raise ParseError(line_number, f"unknown match type {tokens[1]!r}")
            elif keyword == "set":
                if current_clause is None:
                    raise ParseError(line_number, "set outside a route-map clause")
                if tokens[1] == "local-preference":
                    current_clause["set_local_pref"] = int(tokens[2])
                elif tokens[1] == "community":
                    values = [token for token in tokens[2:] if token != "additive"]
                    current_clause["set_communities"].extend(values)
                elif tokens[1] == "comm-list" and tokens[3] == "delete":
                    current_clause["delete_communities"].append(tokens[2])
                elif tokens[1] == "as-path-prepend":
                    current_clause["prepend_as"] = int(tokens[2])
                else:
                    raise ParseError(line_number, f"unknown set action {tokens[1]!r}")
            elif keyword == "acl":
                acl_name = tokens[1]
                rest = tokens[2:]
                default_action = "deny"
                if "default" in rest:
                    index = rest.index("default")
                    default_action = rest[index + 1]
                    rest = rest[:index]
                lines = []
                for i in range(0, len(rest), 2):
                    lines.append(AclLine(action=rest[i], prefix=Prefix.parse(rest[i + 1])))
                existing_acl = current_device.acls.get(acl_name)
                all_lines = (existing_acl.lines if existing_acl else ()) + tuple(lines)
                current_device.acls[acl_name] = Acl(
                    name=acl_name, lines=all_lines, default_action=default_action
                )
            elif keyword == "interface-acl":
                current_device.interface_acls[tokens[1]] = tokens[2]
            else:
                raise ParseError(line_number, f"unknown keyword {keyword!r}")
        except ParseError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrap with position info
            raise ParseError(line_number, str(exc)) from exc

    # Materialise the accumulated route-map clauses.
    route_maps: Dict[Tuple[str, str], List[RouteMapClause]] = {}
    for (device_name, map_name, _sequence), clause in pending_clauses.items():
        route_maps.setdefault((device_name, map_name), []).append(
            RouteMapClause(
                sequence=clause["sequence"],
                action=clause["action"],
                match_community_lists=tuple(clause["match_community_lists"]),
                match_prefix_lists=tuple(clause["match_prefix_lists"]),
                set_local_pref=clause["set_local_pref"],
                set_communities=tuple(clause["set_communities"]),
                delete_communities=tuple(clause["delete_communities"]),
                prepend_as=clause["prepend_as"],
            )
        )
    for (device_name, map_name), clauses in route_maps.items():
        devices[device_name].route_maps[map_name] = RouteMap(
            name=map_name, clauses=tuple(clauses)
        )

    return Network(graph=graph, devices=devices, name=name)


def format_network(network: Network) -> str:
    """Render a network back to the textual format (round-trip friendly)."""
    lines: List[str] = []
    for name in sorted(network.devices):
        device = network.devices[name]
        lines.append(f"device {name}")
        if device.asn and device.asn != name:
            lines.append(f"  asn {device.asn}")
        for prefix in device.originated_prefixes:
            lines.append(f"  network {prefix}")
        for static in device.static_routes:
            suffix = f" next-hop {static.next_hop}" if static.next_hop else ""
            lines.append(f"  static-route {static.prefix}{suffix}")
        for link in device.ospf_links.values():
            lines.append(f"  ospf-link {link.peer} cost {link.cost} area {link.area}")
        for neighbor in device.bgp_neighbors.values():
            parts = [f"  bgp-neighbor {neighbor.peer}"]
            if neighbor.import_policy:
                parts.append(f"import {neighbor.import_policy}")
            if neighbor.export_policy:
                parts.append(f"export {neighbor.export_policy}")
            if neighbor.ibgp:
                parts.append("session ibgp")
            lines.append(" ".join(parts))
        for community_list in device.community_lists.values():
            values = " ".join(community_list.communities)
            lines.append(f"  community-list {community_list.name} {values}")
        for prefix_list in device.prefix_lists.values():
            for entry in prefix_list.entries:
                extra = ""
                if entry.ge is not None:
                    extra += f" ge {entry.ge}"
                if entry.le is not None:
                    extra += f" le {entry.le}"
                lines.append(
                    f"  prefix-list {prefix_list.name} {entry.action} {entry.prefix}{extra}"
                )
        for route_map in device.route_maps.values():
            for clause in route_map.clauses:
                lines.append(f"  route-map {route_map.name} {clause.sequence} {clause.action}")
                if clause.match_community_lists:
                    lines.append("    match community " + " ".join(clause.match_community_lists))
                if clause.match_prefix_lists:
                    lines.append("    match prefix-list " + " ".join(clause.match_prefix_lists))
                if clause.set_local_pref is not None:
                    lines.append(f"    set local-preference {clause.set_local_pref}")
                for community in clause.set_communities:
                    lines.append(f"    set community {community}")
                for community in clause.delete_communities:
                    lines.append(f"    set comm-list {community} delete")
                if clause.prepend_as:
                    lines.append(f"    set as-path-prepend {clause.prepend_as}")
        for acl in device.acls.values():
            rendered = " ".join(f"{line.action} {line.prefix}" for line in acl.lines)
            lines.append(
                f"  acl {acl.name} {rendered} default {acl.default_action}".replace("  default", " default")
                if rendered
                else f"  acl {acl.name} default {acl.default_action}"
            )
        for peer, acl_name in device.interface_acls.items():
            lines.append(f"  interface-acl {peer} {acl_name}")
        lines.append("")
    seen = set()
    for u, v in network.graph.edges:
        key = frozenset((u, v))
        if key not in seen:
            seen.add(key)
            lines.append(f"link {u} {v}")
    return "\n".join(lines) + "\n"
