"""Vendor-independent configuration IR (the Batfish-substitute substrate)."""

from repro.config.acl import Acl, AclLine, PERMIT_ALL_ACL
from repro.config.device import (
    BgpNeighborConfig,
    ConfigError,
    DeviceConfig,
    OspfLinkConfig,
    StaticRouteConfig,
)
from repro.config.network import Network
from repro.config.parser import ParseError, format_network, parse_network
from repro.config.prefix import DEFAULT_PREFIX, Prefix, PrefixTrie
from repro.config.routemap import (
    DENY_ALL,
    PERMIT_ALL,
    CommunityList,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.config.transfer import (
    CompiledEdge,
    VIRTUAL_DESTINATION,
    build_srp_from_network,
    compile_edges,
    evaluate_route_map,
    specialize_route_map,
    syntactic_policy_keys,
)

__all__ = [
    "Acl",
    "AclLine",
    "PERMIT_ALL_ACL",
    "BgpNeighborConfig",
    "ConfigError",
    "DeviceConfig",
    "OspfLinkConfig",
    "StaticRouteConfig",
    "Network",
    "ParseError",
    "format_network",
    "parse_network",
    "DEFAULT_PREFIX",
    "Prefix",
    "PrefixTrie",
    "DENY_ALL",
    "PERMIT_ALL",
    "CommunityList",
    "PrefixList",
    "PrefixListEntry",
    "RouteMap",
    "RouteMapClause",
    "CompiledEdge",
    "VIRTUAL_DESTINATION",
    "build_srp_from_network",
    "compile_edges",
    "evaluate_route_map",
    "specialize_route_map",
    "syntactic_policy_keys",
]
