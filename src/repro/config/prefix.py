"""IPv4 prefixes and the prefix trie used for destination equivalence classes.

Bonsai builds one abstraction per *destination equivalence class* (§5.1):
announcements for different destinations do not interact, so the IP space
is partitioned by the prefixes that appear anywhere in the configurations
(originated networks, static routes, prefix-list entries), and one abstract
network is computed per class.  The partitioning uses a binary prefix trie
whose leaves carry the set of destination (originating) nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


def _parse_ipv4(address: str) -> int:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if octet < 0 or octet > 255:
            raise ValueError(f"malformed IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix ``address/length`` with host bits zeroed."""

    address: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0 or self.length > 32:
            raise ValueError(f"invalid prefix length {self.length}")
        if self.address < 0 or self.address >= (1 << 32):
            raise ValueError("address out of IPv4 range")
        mask = self.mask()
        if self.address & ~mask & 0xFFFFFFFF:
            # Normalise host bits instead of rejecting: mirror router behaviour.
            object.__setattr__(self, "address", self.address & mask)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.1.0/24"`` (a bare address is treated as a /32)."""
        text = text.strip()
        if "/" in text:
            addr, _, length = text.partition("/")
            return cls(_parse_ipv4(addr), int(length))
        return cls(_parse_ipv4(text), 32)

    def mask(self) -> int:
        """The network mask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << (32 - self.length)

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.address & self.mask()) == self.address

    def contains_address(self, address: int) -> bool:
        return (address & self.mask()) == self.address

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other) or other.contains(self)

    def first_address(self) -> int:
        return self.address

    def last_address(self) -> int:
        return self.address | (~self.mask() & 0xFFFFFFFF)

    def bits(self) -> Tuple[int, ...]:
        """The prefix's significant bits, most significant first."""
        return tuple((self.address >> (31 - i)) & 1 for i in range(self.length))

    def child(self, bit: int) -> "Prefix":
        """The length+1 sub-prefix obtained by appending ``bit``."""
        if self.length >= 32:
            raise ValueError("cannot extend a /32 prefix")
        address = self.address
        if bit:
            address |= 1 << (31 - self.length)
        return Prefix(address, self.length + 1)

    def __str__(self) -> str:
        return f"{_format_ipv4(self.address)}/{self.length}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Prefix({str(self)!r})"


#: The whole IPv4 space.
DEFAULT_PREFIX = Prefix(0, 0)


@dataclass
class _TrieNode:
    prefix: Prefix
    origins: Set[str] = field(default_factory=set)
    marked: bool = False
    children: Dict[int, "_TrieNode"] = field(default_factory=dict)


class PrefixTrie:
    """A binary trie over prefixes.

    Prefixes are inserted with an optional set of *origin* nodes (the
    routers that originate a route for the prefix).  The trie supports
    longest-prefix lookup and extraction of destination equivalence
    classes: one class per marked trie node that has at least one origin,
    where the class's origins are those of the longest marked ancestor-or-
    self prefix.
    """

    def __init__(self) -> None:
        self._root = _TrieNode(prefix=DEFAULT_PREFIX)
        self._count = 0

    def insert(self, prefix: Prefix, origins: Iterable[str] = ()) -> None:
        """Insert ``prefix``, recording ``origins`` as its originating nodes."""
        node = self._root
        for bit in prefix.bits():
            if bit not in node.children:
                node.children[bit] = _TrieNode(prefix=node.prefix.child(bit))
            node = node.children[bit]
        if not node.marked:
            self._count += 1
        node.marked = True
        node.origins.update(origins)

    def __len__(self) -> int:
        return self._count

    def longest_match(self, prefix: Prefix) -> Optional[Prefix]:
        """The longest inserted prefix containing ``prefix`` (or ``None``)."""
        node = self._root
        best: Optional[Prefix] = self._root.prefix if self._root.marked else None
        for bit in prefix.bits():
            if bit not in node.children:
                break
            node = node.children[bit]
            if not node.prefix.contains(prefix):
                break
            if node.marked:
                best = node.prefix
        return best

    def origins_for(self, prefix: Prefix) -> Set[str]:
        """The origins recorded on the longest match for ``prefix``."""
        node = self._root
        best: Set[str] = set(self._root.origins) if self._root.marked else set()
        for bit in prefix.bits():
            if bit not in node.children:
                break
            node = node.children[bit]
            if node.marked and node.origins:
                best = set(node.origins)
        return best

    def marked_prefixes(self) -> List[Prefix]:
        """All inserted prefixes, in trie (address) order."""
        result: List[Prefix] = []

        def walk(node: _TrieNode) -> None:
            if node.marked:
                result.append(node.prefix)
            for bit in sorted(node.children):
                walk(node.children[bit])

        walk(self._root)
        return result

    def equivalence_classes(self) -> List[Tuple[Prefix, Set[str]]]:
        """Destination equivalence classes as ``(prefix, origin nodes)`` pairs.

        A class is produced for every marked prefix; its origins are those
        of the prefix itself if present, otherwise inherited from the
        nearest marked ancestor.  Classes with no origins anywhere are kept
        (with an empty origin set) so that callers can report unroutable
        destinations.
        """
        result: List[Tuple[Prefix, Set[str]]] = []

        def walk(node: _TrieNode, inherited: Set[str]) -> None:
            current = inherited
            if node.marked:
                current = set(node.origins) if node.origins else set(inherited)
                result.append((node.prefix, current))
            for bit in sorted(node.children):
                walk(node.children[bit], current)

        walk(self._root, set())
        return result

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self.marked_prefixes())
