"""Bonsai: control plane compression (Beckett et al., SIGCOMM 2018).

This package reimplements the paper's system in pure Python: the Stable
Routing Problem (SRP) model, protocol models, a configuration IR, a BDD
engine for canonical policy comparison, the abstraction-refinement
compression algorithm, and the downstream analyses used in the evaluation.

Typical usage::

    from repro import Bonsai, fattree_network

    network = fattree_network(k=4)
    bonsai = Bonsai(network)
    results = bonsai.compress_all(limit=4)
    print(bonsai.summarize(results).as_row())
"""

from repro.abstraction import (
    Bonsai,
    CompressionResult,
    CompressionSummary,
    NetworkAbstraction,
    build_abstract_srp,
    check_bgp_effective,
    check_cp_equivalence,
    check_effective,
    compute_abstraction,
)
from repro.analysis import (
    BatchVerifier,
    PropertySuite,
    VerificationReport,
    compute_data_plane,
    compute_forwarding_table,
    single_reachability_query,
    verify_all_pairs_reachability,
    verify_network,
    verify_with_abstraction,
)
from repro.config import Network, Prefix, parse_network
from repro.delta import (
    ChangeSet,
    DeltaReport,
    DeltaSweep,
    load_change_script,
    sweep_changes,
)
from repro.failures import (
    FailureReport,
    FailureScenario,
    FailureSweep,
    enumerate_link_failures,
    incremental_resolve,
    sweep_network,
)
from repro.netgen import (
    datacenter_network,
    fattree_network,
    full_mesh_network,
    ring_network,
    wan_network,
)
from repro.routing import (
    build_bgp_srp,
    build_multiprotocol_srp,
    build_ospf_srp,
    build_rip_srp,
    build_static_srp,
)
from repro.pipeline import (
    CompressionPipeline,
    EncodedNetwork,
    PipelineError,
    PipelineReport,
)
from repro.srp import SRP, Solution, solve
from repro.topology import Graph

# The store / facade / service layers import the analysis modules above,
# so they come last (absolute imports keep this cycle-free regardless).
from repro.reporting import ReportEnvelope, load_report, register_report
from repro.store import (
    ArtifactStore,
    BaselineArtifact,
    ClassBaseline,
    StoreError,
    network_fingerprint,
)
from repro.api import Session
from repro.serve import VerificationService, warm_service

__version__ = "1.0.0"

__all__ = [
    "Bonsai",
    "CompressionResult",
    "CompressionSummary",
    "NetworkAbstraction",
    "build_abstract_srp",
    "check_bgp_effective",
    "check_cp_equivalence",
    "check_effective",
    "compute_abstraction",
    "compute_data_plane",
    "compute_forwarding_table",
    "single_reachability_query",
    "BatchVerifier",
    "PropertySuite",
    "VerificationReport",
    "verify_network",
    "verify_all_pairs_reachability",
    "verify_with_abstraction",
    "Network",
    "Prefix",
    "parse_network",
    "ChangeSet",
    "DeltaReport",
    "DeltaSweep",
    "load_change_script",
    "sweep_changes",
    "FailureScenario",
    "FailureSweep",
    "FailureReport",
    "enumerate_link_failures",
    "incremental_resolve",
    "sweep_network",
    "datacenter_network",
    "fattree_network",
    "full_mesh_network",
    "ring_network",
    "wan_network",
    "build_bgp_srp",
    "build_multiprotocol_srp",
    "build_ospf_srp",
    "build_rip_srp",
    "build_static_srp",
    "CompressionPipeline",
    "EncodedNetwork",
    "PipelineError",
    "PipelineReport",
    "SRP",
    "Solution",
    "solve",
    "Graph",
    "ReportEnvelope",
    "load_report",
    "register_report",
    "ArtifactStore",
    "BaselineArtifact",
    "ClassBaseline",
    "StoreError",
    "network_fingerprint",
    "Session",
    "VerificationService",
    "warm_service",
    "__version__",
]
