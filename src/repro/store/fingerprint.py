"""Content-based network fingerprints keying the artifact store.

The in-process memos key on :meth:`Graph.version` -- a mutation counter
that is only meaningful inside one Python process.  A *persistent* store
needs a key that survives process boundaries and identifies the network
by content: two processes constructing the same topology and
configurations must compute the same fingerprint, and any configuration
or topology difference must change it.

:func:`network_fingerprint` canonicalises the whole network -- topology
plus every device configuration -- into a nested structure of sorted
tuples and hashes its textual form with SHA-256.  Canonicalisation sorts
sets and dict items by the ``repr`` of their canonical forms, never by
``hash``, so the result is stable under ``PYTHONHASHSEED`` randomisation
(bare ``pickle.dumps`` of anything containing a set is not).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Tuple

from repro.config.network import Network


def canonical_form(value) -> object:
    """A deterministic, order-independent rendering of ``value``.

    Dataclasses become ``(class name, sorted (field, value) pairs)``;
    mappings and sets are sorted by the ``repr`` of their canonicalised
    members.  The output contains only tuples, strings and primitives, so
    its ``repr`` is reproducible across processes and hash seeds.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            sorted(
                (f.name, canonical_form(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            )
        )
        return (type(value).__name__, fields)
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                sorted(
                    ((canonical_form(k), canonical_form(v)) for k, v in value.items()),
                    key=repr,
                )
            ),
        )
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((canonical_form(v) for v in value), key=repr)))
    if isinstance(value, (list, tuple)):
        return tuple(canonical_form(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Remaining config atoms (Prefix, enums, ...) render through repr,
    # which the config layer keeps value-faithful for frozen objects.
    return repr(value)


def _topology_form(network: Network) -> Tuple:
    graph = network.graph
    nodes = tuple(sorted((repr(node) for node in graph.nodes)))
    edges = tuple(sorted((repr(u), repr(v)) for u, v in graph.edges))
    return (nodes, edges)


def network_fingerprint(network: Network) -> str:
    """The SHA-256 content fingerprint of a configured network.

    Covers the directed topology and every device configuration; excludes
    the display ``name`` (renaming a network does not change what any
    analysis computes over it).
    """
    form = (
        "repro-network-v1",
        _topology_form(network),
        canonical_form(network.devices),
    )
    return hashlib.sha256(repr(form).encode("utf-8")).hexdigest()
