"""The persistent baseline artifact: everything a warm start needs.

Every sweep pillar (verify / failures / delta) re-pays the same dominant
baseline cost in-process before its incremental machinery can shine:
encode the policy BDDs, solve every destination class's SRP, compress
every class.  :class:`BaselineArtifact` captures the *outputs* of that
work -- the :class:`~repro.pipeline.encoded.EncodedNetwork`, per-class
baseline labelings, transfer memos, refinement signatures, canonical
partitions and compressions -- keyed by the network's content fingerprint
so a later process (the CLI's ``--baseline`` mode, the serve daemon, a
:class:`~repro.api.Session`) can validate changes and answer queries with
zero baseline re-solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.abstraction.bonsai import CompressionResult
from repro.analysis.dataplane import ForwardingTable, forwarding_table_from_solution
from repro.config.network import Network
from repro.config.transfer import build_srp_from_network
from repro.delta.revalidate import class_signature
from repro.pipeline.core import ClassFanOut, register_class_task
from repro.pipeline.encoded import EncodedNetwork
from repro.pipeline.report import EcRecord
from repro.srp.solver import TransferCache, solve
from repro.store.fingerprint import network_fingerprint

#: Bump when the pickled artifact layout changes incompatibly.
ARTIFACT_SCHEMA_VERSION = 1


@dataclass
class ClassBaseline:
    """The solved-and-compressed baseline of one destination class."""

    prefix: str
    origins: List[str]
    #: The stable labeling of the class's concrete SRP (node -> attribute).
    labeling: Dict
    #: The transfer memo of the baseline solve, ``(edge, label) -> attr``;
    #: seeds incremental re-solves so their offer tables are pure hits.
    transfer_memo: Dict
    #: The refinement-input signature (:func:`class_signature`) deciding
    #: reuse-vs-recompress for changed networks.
    signature: Tuple
    #: Canonical abstraction partition (sorted groups of concrete names).
    partition: List[List[str]] = field(default_factory=list)
    #: The full compression, when the artifact was built with one.
    compression: Optional[CompressionResult] = None
    #: The baseline concrete forwarding table (warm queries evaluate
    #: properties straight off it, no re-solve).
    table: Optional[ForwardingTable] = None
    solve_seconds: float = 0.0
    compress_seconds: float = 0.0


def baseline_class_task(bonsai, equivalence_class, options: dict) -> ClassBaseline:
    """The ``"baseline"`` task: solve (and optionally compress) one class.

    This is the per-class body of :meth:`BaselineArtifact.build`, hoisted
    into a registered task so artifact bakes ride the same fan-out (and
    cost-aware shard scheduler) as every sweep pillar.
    """
    network = bonsai.network
    prefix = equivalence_class.prefix
    origins = set(equivalence_class.origins)
    solve_start = time.perf_counter()
    srp = build_srp_from_network(
        network,
        prefix,
        origins,
        compiled=bonsai.compile_for(prefix),
        include_syntactic_keys=False,
    )
    cache = TransferCache()
    solution = solve(srp, transfer_cache=cache)
    table = forwarding_table_from_solution(network, solution, equivalence_class)
    solve_seconds = time.perf_counter() - solve_start

    compression = None
    partition: List[List[str]] = []
    compress_seconds = 0.0
    if options.get("compress", True):
        compression = bonsai.compress(equivalence_class, build_network=True)
        compress_seconds = compression.compression_seconds
        partition = EcRecord.from_result(compression).groups

    return ClassBaseline(
        prefix=str(prefix),
        origins=sorted(str(origin) for origin in origins),
        labeling=dict(solution.labeling),
        transfer_memo=dict(cache),
        signature=class_signature(network, prefix, equivalence_class.origins),
        partition=partition,
        compression=compression,
        table=table,
        solve_seconds=solve_seconds,
        compress_seconds=compress_seconds,
    )


register_class_task("baseline", "repro.store.artifact:baseline_class_task")


@dataclass
class BaselineArtifact:
    """A warm baseline for one network, ready to persist or serve."""

    fingerprint: str
    network_name: str
    use_bdds: bool
    encoded: EncodedNetwork
    #: ``str(prefix) -> ClassBaseline`` for every routable class.
    baselines: Dict[str, ClassBaseline]
    schema_version: int = ARTIFACT_SCHEMA_VERSION
    build_seconds: float = 0.0

    @property
    def network(self) -> Network:
        return self.encoded.network

    @classmethod
    def build(
        cls,
        network: Optional[Network] = None,
        *,
        artifact: Optional[EncodedNetwork] = None,
        use_bdds: bool = True,
        compress: bool = True,
        limit: Optional[int] = None,
        executor: str = "serial",
        workers: int = 4,
        scheduler: str = "stealing",
        cost_store=None,
    ) -> "BaselineArtifact":
        """Pay the full baseline cost once: encode, solve and (optionally)
        compress every destination class.

        ``artifact`` reuses an existing :class:`EncodedNetwork`;
        ``compress=False`` skips the per-class compressions (the delta
        revalidator then recompresses lazily, as without a baseline);
        ``limit`` bounds the classes covered (smoke runs).  The per-class
        work rides the ``"baseline"`` fan-out task, so ``executor`` /
        ``workers`` parallelise big bakes through the same cost-aware
        scheduler as the sweeps (default: serial, as before).
        """
        start = time.perf_counter()
        if artifact is None:
            if network is None:
                raise ValueError("either a network or an EncodedNetwork is required")
            artifact = EncodedNetwork.build(network, use_bdds=use_bdds)
        network = artifact.network

        fanout = ClassFanOut(
            artifact=artifact,
            task="baseline",
            task_options={"compress": compress},
            executor=executor,
            workers=workers,
            limit=limit,
            use_bdds=artifact.use_bdds,
            scheduler=scheduler,
            cost_store=cost_store,
        )
        baselines: Dict[str, ClassBaseline] = {
            baseline.prefix: baseline for baseline in fanout.execute()
        }

        return cls(
            fingerprint=network_fingerprint(network),
            network_name=network.name,
            use_bdds=artifact.use_bdds,
            encoded=artifact,
            baselines=baselines,
            build_seconds=time.perf_counter() - start,
        )

    def baseline_for(self, prefix) -> Optional[ClassBaseline]:
        return self.baselines.get(str(prefix))

    def matches(self, network: Network) -> bool:
        """Whether ``network``'s content fingerprint equals this artifact's."""
        return network_fingerprint(network) == self.fingerprint

    def stats(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "network_name": self.network_name,
            "use_bdds": self.use_bdds,
            "num_classes": len(self.baselines),
            "compressed_classes": sum(
                1 for b in self.baselines.values() if b.compression is not None
            ),
            "build_seconds": self.build_seconds,
            "schema_version": self.schema_version,
        }
