"""Persistent baseline artifacts: build once, validate and serve forever.

The tentpole of ROADMAP item 1: the dominant baseline cost of every sweep
(encode + solve + compress) is paid once by
:meth:`BaselineArtifact.build`, persisted by :class:`ArtifactStore` under
the network's content fingerprint with integrity checksums and a schema
version, and reloaded -- with full verification, refusing (never crashing
on, never silently serving) corrupt or foreign entries -- by later
processes: ``--baseline`` delta runs, :class:`repro.api.Session` and the
``repro.serve`` daemon.
"""

from repro.store.artifact import (
    ARTIFACT_SCHEMA_VERSION,
    BaselineArtifact,
    ClassBaseline,
)
from repro.store.fingerprint import canonical_form, network_fingerprint
from repro.store.store import (
    COSTS_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    StoreError,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "COSTS_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "ArtifactStore",
    "BaselineArtifact",
    "ClassBaseline",
    "StoreError",
    "canonical_form",
    "network_fingerprint",
]
