"""The versioned on-disk artifact store (refuse-and-rebuild loading).

Layout: one directory per network fingerprint under the store root --

    <root>/<fingerprint>/meta.json     integrity + provenance sidecar
    <root>/<fingerprint>/payload.pkl   the pickled BaselineArtifact

``meta.json`` is the trust boundary in front of the pickle: it records
the store schema version, the fingerprint the artifact claims to be for,
the payload's SHA-256 and size, and display provenance.  :meth:`load`
verifies *all* of it -- schema compatibility, checksum, and that the
unpickled artifact's own fingerprint matches the directory it was found
in -- before handing the payload to anyone.  Any mismatch raises
:class:`StoreError` with a diagnostic naming what failed; nothing is ever
served stale or half-read.  :meth:`load_or_build` turns that refusal into
a rebuild: corrupted entries are replaced, not crashed on.

Writes are atomic (temp file + ``os.replace``) so a crashed save leaves
either the old entry or none, never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.config.network import Network
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.store.artifact import ARTIFACT_SCHEMA_VERSION, BaselineArtifact
from repro.store.fingerprint import network_fingerprint

#: Bump when the on-disk layout (meta keys, file names) changes.
STORE_SCHEMA_VERSION = 1

#: Bump when the ``costs.json`` sidecar layout changes.  Cost data is
#: *advisory* (it only orders the shard scheduler's dispatch), so readers
#: tolerate missing/foreign/mismatched sidecars by returning nothing
#: instead of raising.
COSTS_SCHEMA_VERSION = 1

_META_NAME = "meta.json"
_PAYLOAD_NAME = "payload.pkl"
_COSTS_NAME = "costs.json"


class StoreError(Exception):
    """A store entry is missing, corrupt or foreign; callers rebuild.

    ``reason`` is a stable machine-readable slug (``missing``,
    ``checksum_mismatch``, ...) that labels the ``store.refused.<reason>``
    counter and the structured ``store.refused`` event, so refusals are
    observable instead of silently dissolving into rebuilds.
    """

    def __init__(self, message: str, reason: str = "unknown"):
        super().__init__(message)
        self.reason = reason


def _refuse(fingerprint: str, reason: str, detail: str) -> "StoreError":
    """Count, announce and build (not raise) one load refusal."""
    _metrics.counter(f"store.refused.{reason}").inc()
    _events.emit(
        "store.refused",
        fingerprint=str(fingerprint)[:12],
        reason=reason,
        detail=detail,
    )
    return StoreError(detail, reason)


def refusal_counts(counters: Optional[Dict[str, float]] = None) -> Dict[str, int]:
    """This process's ``store.refused.<reason>`` counters, keyed by
    reason slug (what ``store info`` surfaces)."""
    if counters is None:
        counters = _metrics.collect()["counters"]
    prefix = "store.refused."
    return {
        key[len(prefix):]: int(value)
        for key, value in sorted(counters.items())
        if key.startswith(prefix)
    }


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


class ArtifactStore:
    """A directory of fingerprint-keyed :class:`BaselineArtifact` entries."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def has(self, fingerprint: str) -> bool:
        entry = self.entry_dir(fingerprint)
        return (entry / _META_NAME).is_file() and (entry / _PAYLOAD_NAME).is_file()

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, artifact: BaselineArtifact) -> Path:
        """Persist an artifact under its fingerprint; returns the entry dir."""
        entry = self.entry_dir(artifact.fingerprint)
        entry.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        meta = {
            "store_schema_version": STORE_SCHEMA_VERSION,
            "artifact_schema_version": artifact.schema_version,
            "fingerprint": artifact.fingerprint,
            "network_name": artifact.network_name,
            "use_bdds": artifact.use_bdds,
            "num_classes": len(artifact.baselines),
            "payload_sha256": _sha256(payload),
            "payload_bytes": len(payload),
            "saved_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
        # Payload first: a crash between the two writes leaves a stale
        # meta whose checksum refuses the new payload (refuse-and-rebuild)
        # rather than a fresh meta blessing a missing payload.
        _atomic_write(entry / _PAYLOAD_NAME, payload)
        _atomic_write(
            entry / _META_NAME,
            json.dumps(meta, indent=2, sort_keys=True).encode("utf-8"),
        )
        return entry

    # ------------------------------------------------------------------
    # Load (strict)
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> BaselineArtifact:
        """Load and fully verify one entry; :class:`StoreError` otherwise."""
        entry = self.entry_dir(fingerprint)
        meta_path = entry / _META_NAME
        payload_path = entry / _PAYLOAD_NAME
        if not meta_path.is_file() or not payload_path.is_file():
            raise _refuse(
                fingerprint, "missing",
                f"no artifact for fingerprint {fingerprint[:12]}... under {self.root}",
            )
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise _refuse(
                fingerprint, "unreadable_meta",
                f"unreadable meta for {fingerprint[:12]}...: {exc}",
            ) from exc

        if meta.get("store_schema_version") != STORE_SCHEMA_VERSION:
            raise _refuse(
                fingerprint, "store_schema_mismatch",
                f"store schema mismatch for {fingerprint[:12]}...: "
                f"entry has {meta.get('store_schema_version')!r}, "
                f"this build reads {STORE_SCHEMA_VERSION}",
            )
        if meta.get("artifact_schema_version") != ARTIFACT_SCHEMA_VERSION:
            raise _refuse(
                fingerprint, "artifact_schema_mismatch",
                f"artifact schema mismatch for {fingerprint[:12]}...: "
                f"entry has {meta.get('artifact_schema_version')!r}, "
                f"this build reads {ARTIFACT_SCHEMA_VERSION}",
            )
        if meta.get("fingerprint") != fingerprint:
            raise _refuse(
                fingerprint, "foreign_meta",
                f"foreign entry: meta claims fingerprint "
                f"{str(meta.get('fingerprint'))[:12]}... but was found under "
                f"{fingerprint[:12]}...",
            )

        payload = payload_path.read_bytes()
        digest = _sha256(payload)
        if digest != meta.get("payload_sha256"):
            raise _refuse(
                fingerprint, "checksum_mismatch",
                f"payload checksum mismatch for {fingerprint[:12]}... "
                f"(expected {str(meta.get('payload_sha256'))[:12]}..., "
                f"got {digest[:12]}...): truncated or corrupted entry",
            )
        try:
            artifact = pickle.loads(payload)
        except Exception as exc:  # pickle raises a zoo of error types
            raise _refuse(
                fingerprint, "unpickle_error",
                f"payload for {fingerprint[:12]}... does not unpickle: {exc}",
            ) from exc
        if not isinstance(artifact, BaselineArtifact):
            raise _refuse(
                fingerprint, "wrong_type",
                f"payload for {fingerprint[:12]}... is a "
                f"{type(artifact).__name__}, not a BaselineArtifact",
            )
        if artifact.fingerprint != fingerprint:
            raise _refuse(
                fingerprint, "foreign_payload",
                f"foreign artifact: payload carries fingerprint "
                f"{artifact.fingerprint[:12]}... but was stored under "
                f"{fingerprint[:12]}...",
            )
        _metrics.counter("store.loads").inc()
        _events.emit("store.loaded", fingerprint=fingerprint[:12])
        return artifact

    def load_for(self, network: Network) -> BaselineArtifact:
        """Strict load of the entry matching ``network``'s content."""
        return self.load(network_fingerprint(network))

    # ------------------------------------------------------------------
    # Load or rebuild
    # ------------------------------------------------------------------
    def load_or_build(
        self, network: Network, **build_kwargs
    ) -> Tuple[BaselineArtifact, bool, str]:
        """``(artifact, rebuilt, reason)``: a verified load, or a fresh
        build saved over whatever refused to load (``reason`` is the
        diagnostic; empty on a clean load)."""
        fingerprint = network_fingerprint(network)
        try:
            return self.load(fingerprint), False, ""
        except StoreError as exc:
            reason = str(exc)
        artifact = BaselineArtifact.build(network, **build_kwargs)
        self.save(artifact)
        return artifact, True, reason

    # ------------------------------------------------------------------
    # Observed per-class costs (the shard scheduler's memory)
    # ------------------------------------------------------------------
    def record_costs(
        self,
        fingerprint: str,
        task_path: str,
        unit_seconds: Dict[str, float],
        unit_counts: Optional[Dict[str, int]] = None,
    ) -> Path:
        """Merge one sweep's observed per-class wall-clock into the
        entry's ``costs.json`` sidecar, keyed by task path.

        The sidecar lives beside ``meta.json`` but is deliberately *not*
        covered by the payload checksum: costs are advisory scheduling
        data that every sweep rewrites, while the meta/payload pair is an
        integrity-checked artifact.  An entry directory may carry costs
        before (or without) ever holding a payload -- sweeps that never
        persisted a baseline still remember their class costs.
        """
        entry = self.entry_dir(fingerprint)
        entry.mkdir(parents=True, exist_ok=True)
        data = self.load_costs(fingerprint)
        if not data:
            data = {
                "costs_schema_version": COSTS_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "tasks": {},
            }
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        data["recorded_at"] = stamp
        data["tasks"][task_path] = {
            "unit_seconds": {str(k): float(v) for k, v in unit_seconds.items()},
            "unit_counts": {
                str(k): int(v) for k, v in (unit_counts or {}).items()
            },
            "total_seconds": float(sum(unit_seconds.values())),
            "num_units": len(unit_seconds),
            "recorded_at": stamp,
        }
        path = entry / _COSTS_NAME
        _atomic_write(path, json.dumps(data, indent=2, sort_keys=True).encode("utf-8"))
        return path

    def load_costs(self, fingerprint: str) -> Dict:
        """The entry's costs sidecar, or ``{}`` when absent, unreadable,
        schema-mismatched or foreign (advisory data never raises)."""
        path = self.entry_dir(fingerprint) / _COSTS_NAME
        if not path.is_file():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict):
            return {}
        if data.get("costs_schema_version") != COSTS_SCHEMA_VERSION:
            return {}
        if data.get("fingerprint") != fingerprint:
            return {}
        if not isinstance(data.get("tasks"), dict):
            return {}
        return data

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def list(self) -> List[Dict]:
        """The meta of every readable entry, sorted by network name."""
        entries: List[Dict] = []
        if not self.root.is_dir():
            return entries
        for child in sorted(self.root.iterdir()):
            meta_path = child / _META_NAME
            if not meta_path.is_file():
                continue
            try:
                entries.append(json.loads(meta_path.read_text()))
            except (OSError, ValueError):
                entries.append({"fingerprint": child.name, "unreadable": True})
        entries.sort(key=lambda m: (str(m.get("network_name", "")), str(m.get("fingerprint"))))
        return entries

    def delete(self, fingerprint: str) -> bool:
        """Remove one entry; True when something was deleted."""
        entry = self.entry_dir(fingerprint)
        removed = False
        for name in (_META_NAME, _PAYLOAD_NAME, _COSTS_NAME):
            path = entry / name
            if path.is_file():
                path.unlink()
                removed = True
        if entry.is_dir() and not any(entry.iterdir()):
            entry.rmdir()
        return removed

    def meta(self, fingerprint: str) -> Optional[Dict]:
        meta_path = self.entry_dir(fingerprint) / _META_NAME
        if not meta_path.is_file():
            return None
        try:
            return json.loads(meta_path.read_text())
        except (OSError, ValueError):
            return None
