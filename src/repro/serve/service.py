"""The warm-baseline verification service core (transport-agnostic).

:class:`VerificationService` wraps a :class:`repro.api.Session` and
answers verify / delta / failure / k-resilience queries concurrently:

* **Per-class batching**: concurrent queries that resolve to the same
  work unit (the same destination class and parameters) are *coalesced*
  -- one thread computes, the rest wait on the same in-flight result --
  so a thundering herd of identical verify calls costs one evaluation.
* **Shared warm state**: every query runs off the session's stored
  baseline (tables, labelings, transfer memos, compressions), and
  verify answers are additionally memoised in a bounded cache (the
  network inside a session is immutable, so they never go stale).
* **Latency accounting**: :class:`QueryStats` records per-query wall
  clock and reports count / mean / p50 / p95 per query kind.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence

from repro import perfutil
from repro.api import Session
from repro.delta.changeset import ChangeSet, change_from_dict
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry

#: Bound on the memoised verify answers (distinct (prefix, properties)
#: keys); overflow evicts wholesale, like the solver's TransferCache.
DEFAULT_ANSWER_CACHE_LIMIT = 256

_LATENCY_PREFIX = "serve.latency."


class ServiceSaturated(RuntimeError):
    """The service is at its in-flight bound; the caller should retry.

    The HTTP layer maps this to ``503`` with a ``Retry-After`` header --
    saturation is bounded and observable instead of silently queueing a
    thread per connection until the process keels over.
    """

    retry_after_seconds = 1

    def __init__(self, kind: str, inflight: int, limit: int):
        super().__init__(
            f"service saturated: {inflight} requests in flight (limit {limit}); "
            f"retry {kind!r} shortly"
        )
        self.kind = kind
        self.inflight = inflight
        self.limit = limit


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class QueryStats:
    """Per-kind latency accounting on bounded histograms.

    Backed by a private :class:`MetricsRegistry`, so a service that runs
    for weeks holds O(reservoir) floats per query kind instead of every
    sample ever recorded, and its counts reset with the service rather
    than the process.  ``summary()`` keeps the historical ``/stats``
    shape (count / coalesced / mean / p50 / p95 / max, all in ms).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def record(self, kind: str, seconds: float, coalesced: bool = False) -> None:
        self.registry.histogram(_LATENCY_PREFIX + kind).observe(seconds)
        if coalesced:
            self.registry.counter(f"serve.coalesced.{kind}").inc()

    def summary(self) -> Dict[str, Dict[str, float]]:
        collected = self.registry.collect()
        out: Dict[str, Dict[str, float]] = {}
        for name, stats in collected["histograms"].items():
            if not name.startswith(_LATENCY_PREFIX):
                continue
            kind = name[len(_LATENCY_PREFIX):]
            out[kind] = {
                "count": stats["count"],
                "coalesced": collected["counters"].get(f"serve.coalesced.{kind}", 0),
                "mean_ms": 1e3 * (stats["mean"] or 0.0),
                "p50_ms": 1e3 * (stats["p50"] or 0.0),
                "p95_ms": 1e3 * (stats["p95"] or 0.0),
                "max_ms": 1e3 * (stats["max"] or 0.0),
            }
        return out


class _Coalescer:
    """Deduplicate concurrent identical computations by key.

    The first caller of a key becomes the owner and computes; callers
    arriving while it is in flight block on the same event and share the
    owner's result (or exception).  Results are *not* retained after the
    flight completes -- caching is the caller's concern.
    """

    class _Flight:
        __slots__ = ("event", "result", "error")

        def __init__(self) -> None:
            self.event = threading.Event()
            self.result = None
            self.error: Optional[BaseException] = None

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[object, "_Coalescer._Flight"] = {}

    def run(self, key, compute: Callable[[], object]):
        """``(result, coalesced)``: coalesced is True for non-owners."""
        with self._lock:
            flight = self._inflight.get(key)
            owner = flight is None
            if owner:
                flight = self._inflight[key] = self._Flight()
        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, True
        try:
            flight.result = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
        return flight.result, False


class VerificationService:
    """Concurrent query front-end over one warm :class:`Session`."""

    def __init__(
        self,
        session: Session,
        answer_cache_limit: int = DEFAULT_ANSWER_CACHE_LIMIT,
        max_inflight: Optional[int] = None,
        event_log_capacity: Optional[int] = None,
    ) -> None:
        self.session = session
        self.stats = QueryStats()
        #: Per-service registry: query latencies, coalescing and answer
        #: cache counters live here (and reset with the service); solver
        #: and cache counters stay in the process-global registry.
        self.registry = self.stats.registry
        self._coalescer = _Coalescer()
        self._cache_lock = threading.Lock()
        self._cache_limit = answer_cache_limit
        self._answers: Dict[object, Dict] = {}
        #: Total concurrent queries this service accepts; ``None``/0
        #: means unbounded (the historical behaviour).
        self.max_inflight = max_inflight if max_inflight and max_inflight > 0 else None
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[str, int] = {}
        #: Recent structured events, served via ``/events`` long polls.
        self.event_log = EventLog(event_log_capacity)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    @contextmanager
    def track_request(self, kind: str):
        """Count one in-flight request of ``kind`` (per-endpoint gauge);
        refuse with :class:`ServiceSaturated` at the in-flight bound."""
        with self._inflight_lock:
            total = sum(self._inflight.values())
            if self.max_inflight is not None and total >= self.max_inflight:
                self.registry.counter(f"serve.rejected.{kind}").inc()
                raise ServiceSaturated(kind, total, self.max_inflight)
            self._inflight[kind] = self._inflight.get(kind, 0) + 1
            self.registry.gauge(f"serve.inflight.{kind}").set(self._inflight[kind])
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight[kind] -= 1
                self.registry.gauge(f"serve.inflight.{kind}").set(self._inflight[kind])

    def inflight_snapshot(self) -> Dict[str, int]:
        with self._inflight_lock:
            return dict(self._inflight)

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------
    def events_since(self, cursor: int = 0, timeout: float = 0.0) -> Dict[str, object]:
        """Events after ``cursor`` (long-polling up to ``timeout`` s)."""
        payload = self.event_log.since(cursor, timeout=min(max(timeout, 0.0), 30.0))
        payload["ok"] = True
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _answer_cache_info(self) -> Dict[str, object]:
        with self._cache_lock:
            size = len(self._answers)
        collected = self.registry.collect()["counters"]
        return {
            "size": size,
            "limit": self._cache_limit,
            "hits": collected.get("serve.answer_cache.hits", 0),
            "misses": collected.get("serve.answer_cache.misses", 0),
            "overflows": collected.get("serve.answer_cache.overflows", 0),
        }

    def health(self) -> Dict[str, object]:
        rss = perfutil.peak_rss_mb()
        self.registry.gauge("process.peak_rss_mb").max(rss)
        return {
            "ok": True,
            "network": self.session.network.name,
            "fingerprint": self.session.fingerprint,
            "classes": len(self.session.classes),
            "warm": True,
            "peak_rss_mb": round(rss, 3),
            "answer_cache": self._answer_cache_info(),
            "store": {
                "root": None if self.session._store_root is None else str(self.session._store_root),
                "rebuilt": self.session.rebuilt,
                "rebuild_reason": self.session.rebuild_reason,
            },
        }

    def stats_summary(self) -> Dict[str, object]:
        rss = perfutil.peak_rss_mb()
        self.registry.gauge("process.peak_rss_mb").max(rss)
        return {
            "ok": True,
            "queries": self.stats.summary(),
            "process": {"peak_rss_mb": round(rss, 3)},
            "answer_cache": self._answer_cache_info(),
            "inflight": {
                "limit": self.max_inflight,
                "by_kind": self.inflight_snapshot(),
            },
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the global + service registries."""
        self.registry.gauge("process.peak_rss_mb").max(perfutil.peak_rss_mb())
        return _metrics.render_prometheus([_metrics.REGISTRY, self.registry])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _cached(self, key, compute: Callable[[], Dict]) -> Dict:
        with self._cache_lock:
            answer = self._answers.get(key)
        if answer is not None:
            self.registry.counter("serve.answer_cache.hits").inc()
            return answer
        self.registry.counter("serve.answer_cache.misses").inc()
        answer = compute()
        with self._cache_lock:
            if len(self._answers) >= self._cache_limit:
                self._answers.clear()
                self.registry.counter("serve.answer_cache.overflows").inc()
                _events.emit(
                    "cache.overflow",
                    cache="serve.answer_cache",
                    limit=self._cache_limit,
                )
            self._answers[key] = answer
        return answer

    def verify(
        self,
        prefix: Optional[str] = None,
        properties: Optional[Sequence[str]] = None,
    ) -> Dict:
        """Warm differential verification (whole network or one class).

        Identical concurrent queries coalesce per destination class, and
        answers are memoised -- the session's network never changes.
        """
        props = None if properties is None else tuple(properties)
        key = ("verify", prefix, props)
        start = time.perf_counter()

        def compute() -> Dict:
            report = self.session.verify(
                None if props is None else list(props), prefix=prefix
            )
            return report.to_dict()

        answer, coalesced = self._coalescer.run(key, lambda: self._cached(key, compute))
        self.stats.record("verify", time.perf_counter() - start, coalesced)
        return answer

    def delta(self, script: Sequence[Dict], revalidate: bool = True) -> Dict:
        """Validate a change script (list of ChangeSet dicts) against the
        stored baseline: zero baseline re-solves."""
        changesets = [ChangeSet.from_dict(dict(raw)) for raw in script]
        key = ("delta", json.dumps([cs.to_dict() for cs in changesets], sort_keys=True), revalidate)
        start = time.perf_counter()

        def compute() -> Dict:
            report = self.session.delta(changesets, revalidate=revalidate)
            return report.to_dict()

        answer, coalesced = self._coalescer.run(key, compute)
        self.stats.record("delta", time.perf_counter() - start, coalesced)
        return answer

    def failures(
        self,
        k: int = 1,
        sample: Optional[int] = None,
        properties: Optional[Sequence[str]] = None,
    ) -> Dict:
        props = None if properties is None else tuple(properties)
        key = ("failures", k, sample, props)
        start = time.perf_counter()

        def compute() -> Dict:
            report = self.session.failures(
                k=k,
                sample=sample,
                properties=None if props is None else list(props),
            )
            return report.to_dict()

        answer, coalesced = self._coalescer.run(key, compute)
        self.stats.record("failures", time.perf_counter() - start, coalesced)
        return answer

    def k_resilience(
        self,
        max_k: int = 2,
        prop: str = "reachability",
        sample: Optional[int] = None,
    ) -> Dict:
        key = ("k-resilience", max_k, prop, sample)
        start = time.perf_counter()

        def compute() -> Dict:
            kwargs = {} if sample is None else {"sample": sample}
            result = dict(self.session.k_resilience(max_k=max_k, prop=prop, **kwargs))
            result["ok"] = True
            return result

        answer, coalesced = self._coalescer.run(key, compute)
        self.stats.record("k_resilience", time.perf_counter() - start, coalesced)
        return answer


def parse_script(raw) -> List[ChangeSet]:
    """Parse a request payload into a validated change script."""
    if not isinstance(raw, list):
        raise ValueError("a change script must be a list of ChangeSet objects")
    script = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise ValueError("each script step must be a ChangeSet dict")
        if "changes" in entry:
            script.append(ChangeSet.from_dict(entry))
        else:
            # A bare change dict becomes a single-change step.
            change = change_from_dict(entry)
            script.append(ChangeSet(name=change.describe(), changes=[change]))
    return script
