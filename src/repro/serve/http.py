"""The stdlib HTTP front-end of the warm-baseline service.

A :class:`ThreadingHTTPServer` (one thread per connection -- which is
what makes the service's per-class query coalescing matter) exposing:

====================  ======  ==============================================
endpoint              method  body / answer
====================  ======  ==============================================
``/health``           GET     service identity and warm-baseline stats
``/stats``            GET     per-kind query latency percentiles
``/metrics``          GET     Prometheus text exposition (global + serve)
``/events``           GET     ``?cursor=N&timeout=S`` -> events since N
``/verify``           POST    ``{"prefix"?, "properties"?}`` -> report dict
``/delta``            POST    ``{"script": [...], "revalidate"?}`` -> report
``/failures``         POST    ``{"k"?, "sample"?, "properties"?}`` -> report
``/k-resilience``     POST    ``{"max_k"?, "property"?, "sample"?}`` -> dict
====================  ======  ==============================================

Every report answer carries the shared envelope (``schema_version`` /
``kind`` / ``ok`` / ``generated_by``), so clients gate on ``ok`` without
knowing the report kind.  Malformed requests get 400 with a diagnostic;
unexpected errors get 500; both as JSON.  Query endpoints count toward
the service's in-flight bound (``--max-inflight``); past it they get
``503`` with a ``Retry-After`` header instead of another queued thread.
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.delta.changeset import ChangeError
from repro.serve.service import ServiceSaturated, VerificationService

#: Request bodies above this size are rejected (a change script of
#: thousands of steps is a client bug, not a workload).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServeHandler(BaseHTTPRequestHandler):
    """Dispatches HTTP requests to the owning server's service."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # Silence the default stderr access log; the service keeps stats.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def service(self) -> VerificationService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0:
            # A negative length would make rfile.read(-1) block on the
            # open keep-alive socket until the client hangs up.
            raise ValueError(f"invalid Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _dispatch(self, handler, kind: Optional[str] = None) -> None:
        try:
            if kind is not None:
                with self.service.track_request(kind):
                    payload = handler()
            else:
                payload = handler()
            self._send_json(200, payload)
        except ServiceSaturated as exc:
            body = json.dumps({
                "ok": False,
                "error": str(exc),
                "retry_after": exc.retry_after_seconds,
            }).encode("utf-8")
            self.send_response(503)
            self.send_header("Content-Type", "application/json")
            self.send_header("Retry-After", str(exc.retry_after_seconds))
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (ValueError, KeyError, TypeError, ChangeError) as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"ok": False, "error": f"internal error: {exc}"})

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/events":
            query = urllib.parse.parse_qs(parsed.query)

            def events() -> dict:
                cursor = int((query.get("cursor") or ["0"])[0])
                timeout = float((query.get("timeout") or ["0"])[0])
                return self.service.events_since(cursor, timeout=timeout)

            self._dispatch(events)
            return
        if self.path == "/health":
            self._dispatch(self.service.health)
        elif self.path == "/stats":
            self._dispatch(self.service.stats_summary)
        elif self.path == "/metrics":
            try:
                body = self.service.metrics_text()
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json(500, {"ok": False, "error": f"internal error: {exc}"})
                return
            self._send_text(200, body, "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/verify":
            self._dispatch(
                lambda: self.service.verify(
                    prefix=self._body.get("prefix"),
                    properties=self._body.get("properties"),
                ),
                kind="verify",
            )
        elif self.path == "/delta":
            self._dispatch(
                lambda: self.service.delta(
                    script=self._require(self._body, "script"),
                    revalidate=bool(self._body.get("revalidate", True)),
                ),
                kind="delta",
            )
        elif self.path == "/failures":
            self._dispatch(
                lambda: self.service.failures(
                    k=int(self._body.get("k", 1)),
                    sample=self._body.get("sample"),
                    properties=self._body.get("properties"),
                ),
                kind="failures",
            )
        elif self.path == "/k-resilience":
            self._dispatch(
                lambda: self.service.k_resilience(
                    max_k=int(self._body.get("max_k", 2)),
                    prop=str(self._body.get("property", "reachability")),
                    sample=self._body.get("sample"),
                ),
                kind="k_resilience",
            )
        else:
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})
            return

    def parse_request(self) -> bool:  # read the body once per request
        ok = super().parse_request()
        self._body = {}
        if ok and self.command == "POST":
            try:
                self._body = self._read_body()
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, {"ok": False, "error": f"bad request body: {exc}"})
                return False
        return ok

    @staticmethod
    def _require(body: dict, key: str):
        if key not in body:
            raise ValueError(f"missing required field {key!r}")
        return body[key]


def create_server(
    service: VerificationService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """A ready-to-run threaded server bound to ``host:port`` (0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.service = service  # type: ignore[attr-defined]
    return server


def _announce(message: str) -> None:
    # Flushed so wrappers (tests, process supervisors) reading the pipe
    # see the bound address before the first request.
    print(message, flush=True)


def serve(
    service: VerificationService,
    host: str = "127.0.0.1",
    port: int = 8642,
    announce=_announce,
) -> None:
    """Run the service until interrupted (the CLI ``serve`` entry point)."""
    server = create_server(service, host=host, port=port)
    bound: Tuple[str, int] = server.server_address[:2]
    announce(f"repro-serve listening on http://{bound[0]}:{bound[1]}")
    announce(
        f"warm baseline: {service.session.network.name} "
        f"({len(service.session.classes)} classes, "
        f"fingerprint {service.session.fingerprint[:12]}...)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def warm_service(
    network=None,
    *,
    store=None,
    baseline=None,
    use_bdds: bool = True,
    answer_cache_limit: Optional[int] = None,
    max_inflight: Optional[int] = None,
) -> VerificationService:
    """Build (or load) a warm session and wrap it in a service."""
    from repro.api import Session

    session = Session(network, baseline=baseline, store=store, use_bdds=use_bdds)
    kwargs = {} if answer_cache_limit is None else {"answer_cache_limit": answer_cache_limit}
    if max_inflight is not None:
        kwargs["max_inflight"] = max_inflight
    return VerificationService(session, **kwargs)
