"""The long-running warm-baseline verification service.

Loads (or builds) a :class:`~repro.store.BaselineArtifact`, keeps it warm
in a :class:`~repro.api.Session`, and answers verify / delta / failure /
k-resilience queries concurrently over stdlib HTTP -- coalescing
concurrent identical queries per destination class, sharing the stored
bounded memos across requests and reporting per-query latency
percentiles.  Start it with ``python -m repro.pipeline serve``.
"""

from repro.serve.http import ServeHandler, create_server, serve, warm_service
from repro.serve.service import QueryStats, VerificationService, parse_script

__all__ = [
    "QueryStats",
    "ServeHandler",
    "VerificationService",
    "create_server",
    "parse_script",
    "serve",
    "warm_service",
]
