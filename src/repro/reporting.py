"""The common report envelope shared by every JSON report kind.

Four subsystems emit run-level JSON reports -- compression
(:class:`~repro.pipeline.report.PipelineReport`), batch verification
(:class:`~repro.analysis.batch.VerificationReport`), failure sweeps
(:class:`~repro.failures.sweep.FailureReport`) and change-impact sweeps
(:class:`~repro.delta.sweep.DeltaReport`).  Each grew its own wire format
PR by PR; consumers (CI gates, benchmarks, the artifact store, the serve
API) had to know which class wrote a given file before they could read
it.

:class:`ReportEnvelope` is the shared base: every report now serialises
a common envelope --

* ``schema_version`` -- the cross-report schema revision (bumped when
  the *envelope* changes; each report keeps its own per-kind ``version``
  field for payload evolution);
* ``kind`` -- the registry key naming the report class;
* ``ok`` -- the report's own gate (:meth:`ReportEnvelope.ok`), so a
  consumer can pass/fail on any report without knowing its kind;
* ``generated_by`` -- the producing package and version.

and :func:`load_report` reads *any* report back by dispatching on
``kind``.  Pre-envelope reports (no ``kind`` key) still load through the
per-class ``from_json`` constructors, which tolerate the envelope keys'
absence -- the backward-compatible-upgrade discipline: new readers accept
old files, old readers ignore the new keys.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
from typing import Dict, Iterator, List, Type

#: Cross-report envelope schema revision.
REPORT_SCHEMA_VERSION = 2

#: Stamped into every report so a file names its producer.
GENERATED_BY = "repro-bonsai 1.0.0"

#: ``kind`` -> report class, filled in by :func:`register_report` as the
#: report modules import.
_REPORT_KINDS: Dict[str, type] = {}

#: Modules whose import registers the built-in report kinds; imported
#: lazily by :func:`load_report` so this module stays dependency-free.
_BUILTIN_REPORT_MODULES = (
    "repro.pipeline.report",
    "repro.analysis.batch",
    "repro.failures.sweep",
    "repro.delta.sweep",
)


class ReportEnvelope:
    """Mixin giving a report class the shared envelope.

    Subclasses set the class attribute ``kind`` (the registry key) and
    implement :meth:`ok`; :meth:`envelope_dict` is what their
    ``to_dict`` merges in, and :meth:`strip_envelope` is what their
    ``from_dict`` uses to drop the envelope keys before rebuilding the
    dataclass.
    """

    #: Registry key; subclasses must override.
    kind: str = ""

    #: The keys the envelope contributes to ``to_dict`` output.
    ENVELOPE_KEYS = ("schema_version", "kind", "ok", "generated_by",
                     "obs_metrics", "trace_summary")

    def ok(self) -> bool:
        """The report-level gate: True when the run passed its checks."""
        raise NotImplementedError

    def attach_observability(self, metrics_block=None, trace_summary=None) -> None:
        """Stamp run-level telemetry (counter deltas, gauges, histogram
        summaries, optional trace hotspots) onto the envelope; emitted by
        :meth:`envelope_dict` when present.  Stored in ``__dict__`` so
        frozen/slotted report dataclasses need no new fields."""
        if metrics_block is not None:
            self.__dict__["_obs_metrics"] = metrics_block
        if trace_summary is not None:
            self.__dict__["_trace_summary"] = trace_summary

    def envelope_dict(self) -> Dict[str, object]:
        envelope: Dict[str, object] = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "kind": self.kind,
            "ok": bool(self.ok()),
            "generated_by": GENERATED_BY,
        }
        obs_metrics = self.__dict__.get("_obs_metrics")
        if obs_metrics is not None:
            envelope["obs_metrics"] = obs_metrics
        trace_summary = self.__dict__.get("_trace_summary")
        if trace_summary is not None:
            envelope["trace_summary"] = trace_summary
        return envelope

    @classmethod
    def strip_envelope(cls, data: Dict) -> Dict:
        """A copy of ``data`` without the envelope keys (tolerates their
        absence, so pre-envelope report files keep loading)."""
        payload = dict(data)
        for key in cls.ENVELOPE_KEYS:
            payload.pop(key, None)
        return payload


class StreamingReport:
    """Mixin: incremental record aggregation with optional disk spill.

    The sweep engines historically collected every per-class record in
    memory and built the report at the end; on fat-tree k=16 / wan-1000
    the records *are* the peak RSS.  This mixin gives a report the
    streaming path instead:

    * :meth:`merge_partial` folds one ``(class index, record)`` in as it
      arrives off the pool, keeping ``records`` ordered by class index
      (completion order never leaks into the output -- streamed reports
      stay bit-identical to serial ones);
    * :meth:`attach_spill` redirects merged records to a
      :class:`~repro.pipeline.stream.RecordSpill` JSONL file, so the
      driver holds O(1) records; :meth:`iter_records` re-reads them one
      at a time, in class order, whenever an aggregate or serialisation
      needs them;
    * :meth:`write_json` streams the report to disk record by record --
      the output is plain JSON, loadable by the ordinary ``from_json``.

    Aggregates in the report classes iterate :meth:`iter_records` (and
    count via :meth:`record_count`) instead of touching ``self.records``
    directly, so both paths share one implementation.  Subclasses
    override :meth:`record_from_payload` to rebuild one record from its
    JSON payload (the exact shape their ``to_dict`` emits per record).
    """

    def attach_spill(self, spill) -> None:
        """Redirect subsequently merged records to ``spill``."""
        self.__dict__["_spill"] = spill

    @property
    def spill(self):
        """The attached :class:`RecordSpill`, or ``None``."""
        return self.__dict__.get("_spill")

    def merge_partial(self, index: int, record) -> None:
        """Fold in one per-class record as it streams off the pool."""
        spill = self.spill
        if spill is not None:
            spill.append(index, self.record_payload(record))
            return
        order = self.__dict__.setdefault("_merge_order", [])
        position = bisect.bisect_left(order, index)
        order.insert(position, index)
        self.records.insert(position, record)

    def iter_records(self) -> Iterator:
        """Every record, in class order, one at a time (spilled records
        are re-read from disk, not materialised together)."""
        yield from self.records
        spill = self.spill
        if spill is not None:
            for _, payload in spill:
                yield self.record_from_payload(payload)

    def record_count(self) -> int:
        spill = self.spill
        return len(self.records) + (len(spill) if spill is not None else 0)

    def record_payload(self, record) -> Dict:
        """One record's JSON payload (what ``to_dict`` emits per record)."""
        return dataclasses.asdict(record)

    @classmethod
    def record_from_payload(cls, payload: Dict):
        """Rebuild one record from :meth:`record_payload` output."""
        raise NotImplementedError

    def records_payload(self) -> List[Dict]:
        return [self.record_payload(record) for record in self.iter_records()]

    def write_json(self, path: str, indent: int = 2) -> None:
        """Stream the report to ``path`` as ordinary JSON, one record in
        memory at a time.  ``from_json`` / :func:`load_report` read it
        back like any other report file."""
        head = self.to_dict(include_records=False)
        head.pop("records", None)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{\n"records": [\n')
            first = True
            for record in self.iter_records():
                if not first:
                    handle.write(",\n")
                handle.write(json.dumps(self.record_payload(record), sort_keys=True))
                first = False
            handle.write("\n],\n" if not first else "],\n")
            body = json.dumps(head, indent=indent, sort_keys=True)
            handle.write(body[1:-1].strip())
            handle.write("\n}\n")


def register_report(cls: type) -> type:
    """Class decorator: register a :class:`ReportEnvelope` subclass by its
    ``kind`` for :func:`load_report` dispatch."""
    if not getattr(cls, "kind", ""):
        raise ValueError(f"{cls.__name__} must set a non-empty 'kind'")
    _REPORT_KINDS[cls.kind] = cls
    return cls


def registered_report_kinds() -> List[str]:
    """The registered kinds (built-ins registered on first use)."""
    _import_builtins()
    return sorted(_REPORT_KINDS)


def report_class_for(kind: str) -> Type:
    """The report class registered for ``kind``."""
    _import_builtins()
    try:
        return _REPORT_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_REPORT_KINDS))
        raise ValueError(f"unknown report kind {kind!r}; registered: {known}") from None


def _import_builtins() -> None:
    import importlib

    for module in _BUILTIN_REPORT_MODULES:
        importlib.import_module(module)


def load_report(source):
    """Load any enveloped report, dispatching on its ``kind`` key.

    ``source`` is a JSON string or an already-parsed dict.  Raises
    :class:`ValueError` on missing/unknown ``kind`` -- pre-envelope files
    must be loaded through the specific class's ``from_json``, which is
    exactly the information their missing ``kind`` key cannot supply.
    """
    data = json.loads(source) if isinstance(source, str) else source
    if not isinstance(data, dict):
        raise ValueError(f"a report must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    if not kind:
        raise ValueError(
            "report has no 'kind' envelope key (pre-envelope file? "
            "load it with the specific report class's from_json)"
        )
    return report_class_for(kind).from_dict(data)
