#!/usr/bin/env python3
"""Cost-aware work stealing and memory-bounded streaming sweeps.

Destination classes are wildly unequal in cost, so pre-cutting them into
contiguous batches (static sharding) lets one heavy batch serialise the
sweep while the other workers idle.  The shard scheduler
(``repro.pipeline.shard``) fixes this with a shared work queue: units are
dispatched largest-first by cost observed on *prior* runs (persisted in
the artifact store's ``costs.json`` sidecars), and whichever worker goes
idle steals the next costliest unit.

This example shows the three pieces on a deliberately skewed workload:

1. static vs stealing wall-clock on a skewed fat-tree sweep;
2. observed per-class costs recorded into an artifact store and warming
   the next run's schedule;
3. a streaming (memory-bounded) failure sweep whose per-class records
   spill to disk as they arrive, so the driver holds O(1) records.

Run with::

    PYTHONPATH=src python examples/sharded_sweep.py
"""

import tempfile
import time

import repro.pipeline.shard  # registers the "bench-sleep" demo task
from repro.abstraction.ec import routable_equivalence_classes
from repro.failures import FailureSweep
from repro.netgen.families import build_topology
from repro.pipeline.core import ClassFanOut
from repro.pipeline.encoded import EncodedNetwork
from repro.store import ArtifactStore
from repro.store.fingerprint import network_fingerprint


def main() -> None:
    # A k=6 fat-tree: 45 devices, 18 destination equivalence classes.
    network = build_topology("fattree", 6)
    artifact = EncodedNetwork.build(network)
    prefixes = [str(ec.prefix) for ec in routable_equivalence_classes(network)]

    # 1. A skewed workload: four classes are 40x heavier than the rest,
    #    and they sit next to each other -- exactly where static
    #    contiguous batching packs them into the same batches.
    heavy = {prefix: 0.4 for prefix in prefixes[:4]}
    true_costs = {p: heavy.get(p, 0.01) for p in prefixes}
    options = {"sleep_seconds": heavy, "default_sleep": 0.01}

    def run(scheduler, unit_costs=None):
        fanout = ClassFanOut(
            artifact=artifact,
            task="bench-sleep",
            task_options=options,
            executor="process",
            workers=4,
            scheduler=scheduler,
            unit_costs=unit_costs,
        )
        start = time.perf_counter()
        fanout.execute()
        return time.perf_counter() - start

    static_s = run("static")
    stealing_s = run("stealing", unit_costs=true_costs)
    print(f"Skewed sweep, 4 workers: static {static_s:.2f}s vs "
          f"cost-aware stealing {stealing_s:.2f}s "
          f"({static_s / stealing_s:.2f}x)")

    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)

        # 2. Costs are recorded transparently after every sweep that has
        #    a cost store (or runs the stealing scheduler); the next run
        #    against the same network fingerprint schedules from them.
        fanout = ClassFanOut(
            artifact=artifact,
            task="compress",
            executor="process",
            workers=4,
            cost_store=store,
        )
        fanout.execute()
        costs = store.load_costs(network_fingerprint(network))
        block = costs["tasks"][fanout.task]
        slowest = max(block["unit_seconds"], key=block["unit_seconds"].get)
        print(f"Recorded costs for {block['num_units']} classes "
              f"({block['total_seconds']:.3f}s total); slowest class "
              f"{slowest} -> scheduled first next run")

        # 3. Streaming aggregation: per-class failure records spill to a
        #    JSONL file the moment they arrive instead of accumulating in
        #    memory (the CLI's --memory-budget flag rides this path).
        report = FailureSweep(
            network,
            k=1,
            executor="process",
            workers=4,
            limit=6,
            soundness=False,
            spill=True,
            cost_store=store,
        ).run()
        print(f"Streaming failure sweep: {report.record_count()} class "
              f"records spilled ({len(report.records)} held in memory), "
              f"ok={report.ok()}")


if __name__ == "__main__":
    main()
