#!/usr/bin/env python
"""A traced failure sweep: where does the wall clock actually go?

`repro.obs` gives every pillar one telemetry spine: a process-global
metrics registry (counters / gauges / bounded histograms) and a
structured tracer whose spans survive process-pool workers -- each work
unit ships its span subtree and counter delta home, and the coordinator
reattaches them deterministically. This example runs a single-link
failure sweep under a trace, writes the schema-versioned JSONL trace
file, and prints the self-time hotspot table -- the same data
`python -m repro.pipeline trace summarize` shows for any `--trace` run.

Run with ``PYTHONPATH=src python examples/traced_sweep.py``.
"""

from __future__ import annotations

from repro import FailureSweep, fattree_network
from repro.obs import metrics, trace

network = fattree_network(k=4)
print(f"sweeping {network.name}: {network.graph.num_nodes()} nodes, "
      f"{network.graph.num_undirected_edges()} links")

# ----------------------------------------------------------------------
# Run the sweep under a trace (process executor: spans cross the pool).
# ----------------------------------------------------------------------
trace.begin("run", command="failures")
report = FailureSweep(
    network, k=1, soundness=False, executor="process", workers=2
).run()
root = trace.end()

trace.write_jsonl("traced_sweep.jsonl", root, context={"command": "failures"})
print(f"\ntrace written to traced_sweep.jsonl "
      f"({sum(1 for _ in root.walk())} spans, {root.duration_ms:.0f}ms)")

# ----------------------------------------------------------------------
# Hotspots: span names ranked by self time (time not in any child span).
# ----------------------------------------------------------------------
print("\nhotspots by self time:")
for row in trace.hotspots(root, top=6):
    print(f"  {row['name']:10s} {row['self_ms']:8.1f}ms self "
          f"/ {row['total_ms']:8.1f}ms total over {row['count']} span(s)")

# ----------------------------------------------------------------------
# The same run's counters, from the report envelope: the registry rode
# along with the sweep (pool workers shipped their deltas home), so the
# report says how much solver and cache work the sweep really did.
# ----------------------------------------------------------------------
block = report.to_dict()["obs_metrics"]
print("\nsweep counters (from the report envelope):")
for name in ("srp.scratch_solves", "srp.seeded_solves",
             "failures.taint_cache.hits", "failures.taint_cache.misses",
             "pipeline.classes_completed"):
    print(f"  {name}: {block['counters'].get(name, 0):.0f}")
print(f"  process.peak_rss_mb: {block['gauges'].get('process.peak_rss_mb', 0):.1f}")

# The class-duration histogram is bounded-memory (reservoir sampled),
# but its count/sum/percentiles describe every class the sweep ran.
hist = block["histograms"].get("pipeline.class_seconds")
if hist:
    print(f"  pipeline.class_seconds: n={hist['count']} "
          f"p50={1e3 * (hist['p50'] or 0):.1f}ms "
          f"p95={1e3 * (hist['p95'] or 0):.1f}ms")

# Prometheus text of the same registry -- what serve's /metrics exposes.
line_count = len(metrics.render_prometheus([metrics.REGISTRY]).splitlines())
print(f"\n/metrics would expose {line_count} Prometheus series lines")
