#!/usr/bin/env python
"""A profiled, event-streamed compression sweep: the full observatory.

On top of metrics and traces, `repro.obs` adds three runtime surfaces:

* a span-scoped sampling profiler (`obs.profile`) -- a background thread
  samples every live frame stack and attributes each sample to the trace
  span open on that thread, so the profile answers "which code is hot
  *inside* which span" and exports collapsed-stack ``folded`` lines any
  flamegraph tool renders directly;
* a structured event stream (`obs.events`) -- sweep start/end, per-class
  completions, splits, steals, spills, fallbacks, store refusals -- with
  a cost-weighted live progress meter riding on it;
* an append-only bench history (`obs.history`) with a rolling-median
  regression check.

This example runs one compression sweep with all three attached -- the
same wiring ``python -m repro.pipeline compress --profile P --events E
--progress`` does -- then reads every artifact back through its paranoid
reader.

Run with ``PYTHONPATH=src python examples/profiled_sweep.py``.
"""

from __future__ import annotations

from repro import fattree_network
from repro.obs import events, profile, trace
from repro.obs import history
from repro.pipeline.core import CompressionPipeline

network = fattree_network(k=4)
print(f"compressing {network.name}: {network.graph.num_nodes()} nodes")

# ----------------------------------------------------------------------
# Attach the observatory: profiler + event file + live progress meter.
# The profiler needs an open trace to attribute samples to spans.
# ----------------------------------------------------------------------
trace.begin("run", command="compress")
writer = events.EventWriter("profiled_sweep.events.jsonl",
                            context={"command": "compress"})
meter = events.ProgressMeter()
with profile.SamplingProfiler(interval_ms=2.0) as profiler:
    result = CompressionPipeline(network, executor="process", workers=2).run()
meter.close()
writer.close()
root = trace.end()

# ----------------------------------------------------------------------
# The profile: span-attributed stacks, flamegraph-ready.
# ----------------------------------------------------------------------
profile.write_jsonl("profiled_sweep.profile.jsonl", profiler,
                    context={"command": "compress"})
print(f"\n{profiler.sample_count} samples across "
      f"{len(profiler.samples)} unique (span, stack) pairs")
print("hottest leaf frames:")
for row in profile.summary(profiler.records(), top=5):
    print(f"  {row['frame']}: {row['samples']} samples")

with open("profiled_sweep.folded", "w", encoding="utf-8") as handle:
    handle.write("\n".join(profiler.folded()) + "\n")
print("flamegraph input written to profiled_sweep.folded "
      "(feed to flamegraph.pl / speedscope / inferno)")

# Sampled CPU self-time landed on the spans themselves.
print("\nspans by sampled CPU self-time:")
rows = [r for r in trace.hotspots(root, top=6) if r.get("cpu_ms")]
for row in rows:
    print(f"  {row['name']:10s} {row['cpu_ms']:8.1f}ms cpu "
          f"/ {row['total_ms']:8.1f}ms wall over {row['count']} span(s)")

# ----------------------------------------------------------------------
# The event stream: read back through the refuse-on-defect reader.
# ----------------------------------------------------------------------
header, records = events.read_jsonl("profiled_sweep.events.jsonl")
completed = [r for r in records if r["type"] == "class.completed"]
print(f"\nevent stream: {len(records)} events "
      f"(schema v{header['schema_version']}), "
      f"{len(completed)} class completions")
start = next(r for r in records if r["type"] == "sweep.start")
print(f"  sweep.start carried cost estimates for {len(start['costs'])} classes "
      f"(the progress meter's ETA source)")

# ----------------------------------------------------------------------
# Bench history: append this run, then run the rolling-median check.
# ----------------------------------------------------------------------
history.append("profiled_sweep.history.jsonl", "example",
               {"compress": sum(r.get("seconds", 0) for r in completed)})
ok, findings = history.regression_check(
    history.read_history("profiled_sweep.history.jsonl"))
print(f"\nbench history: {'ok' if ok else 'REGRESSED'} "
      f"({len(findings)} stages checked; needs >=2 runs per stage)")

assert result.report.ok()
