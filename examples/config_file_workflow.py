#!/usr/bin/env python3
"""Text-config workflow: parse a network description, compress it, and emit
the smaller configuration set (what the Bonsai tool does inside Batfish).

Run with::

    python examples/config_file_workflow.py
"""

from repro import Bonsai
from repro.config import format_network, parse_network

#: A small campus: two identical distribution routers, four identical access
#: routers and one core with an uplink filter.
CAMPUS = """
device core
  network 10.0.0.0/24
  bgp-neighbor dist1 export UPLINK
  bgp-neighbor dist2 export UPLINK
  route-map UPLINK 10 permit
    match prefix-list SITE
  prefix-list SITE permit 10.0.0.0/8 ge 8 le 32

device dist1
  bgp-neighbor core import IN export OUT
  bgp-neighbor acc1 import IN export OUT
  bgp-neighbor acc2 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

device dist2
  bgp-neighbor core import IN export OUT
  bgp-neighbor acc3 import IN export OUT
  bgp-neighbor acc4 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

device acc1
  bgp-neighbor dist1 import IN
  route-map IN 10 permit
device acc2
  bgp-neighbor dist1 import IN
  route-map IN 10 permit
device acc3
  bgp-neighbor dist2 import IN
  route-map IN 10 permit
device acc4
  bgp-neighbor dist2 import IN
  route-map IN 10 permit

link core dist1
link core dist2
link dist1 acc1
link dist1 acc2
link dist2 acc3
link dist2 acc4
"""


def main() -> None:
    network = parse_network(CAMPUS, name="campus")
    problems = network.validate()
    print(f"Parsed {network.num_devices()} devices "
          f"({'valid' if not problems else problems})")

    bonsai = Bonsai(network)
    ec = bonsai.equivalence_classes()[0]
    result = bonsai.compress(ec, build_network=True)
    print(f"Destination {ec.prefix}: {network.graph.num_nodes()} devices "
          f"compressed to {result.abstract_nodes}")
    print("Concrete-to-abstract mapping:")
    for abstract_node in sorted(result.abstract_network.graph.nodes):
        members = sorted(map(str, result.abstraction.concrete_nodes(abstract_node)))
        print(f"  {abstract_node:<8} <- {', '.join(members)}")

    print("\nEmitted abstract configuration:\n")
    print(format_network(result.abstract_network))


if __name__ == "__main__":
    main()
