#!/usr/bin/env python3
"""Figure 11: how routing policy changes the size of the compressed network.

The same fat-tree topology is compressed twice: once running plain
shortest-path eBGP, and once with the aggregation tier preferring routes
from the edge tier below it (two local-preference values).  The policy-rich
variant compresses less because the abstraction must keep enough nodes to
represent every forwarding behaviour the middle tier can exhibit.

Run with::

    python examples/fattree_policies.py [k ...]
"""

import sys

from repro import Bonsai, fattree_network


def compress_first_class(network):
    bonsai = Bonsai(network)
    result = bonsai.compress(bonsai.equivalence_classes()[0])
    return result, bonsai


def main(sizes) -> None:
    print(f"{'k':>3} {'nodes':>6} {'policy':>15} {'abs nodes':>10} {'abs edges':>10} "
          f"{'node ratio':>11}")
    for k in sizes:
        for policy in ("shortest_path", "prefer_bottom"):
            network = fattree_network(k, policy=policy)
            result, _ = compress_first_class(network)
            ratio = result.node_compression_ratio()
            print(f"{k:>3} {network.graph.num_nodes():>6} {policy:>15} "
                  f"{result.abstract_nodes:>10} {result.abstract_edges:>10} {ratio:>10.1f}x")
    print("\nAs in the paper's Figure 11, preferring the bottom tier yields a "
          "larger abstract network: the middle tier has two possible local "
          "preferences and therefore more possible behaviours to represent.")


if __name__ == "__main__":
    requested = [int(arg) for arg in sys.argv[1:]] or [4, 6]
    main(requested)
