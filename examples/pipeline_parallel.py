#!/usr/bin/env python3
"""Batched, parallel compression with the pipeline subsystem.

Destination equivalence classes never interact, so Bonsai can compress
them in parallel: encode the policy BDDs once, ship the encoded artifact
to a pool of workers, and aggregate the per-class results.  This example
shows both the Python API and the equivalent CLI.

Run with::

    PYTHONPATH=src python examples/pipeline_parallel.py
"""

from repro import CompressionPipeline, EncodedNetwork, fattree_network


def main() -> None:
    # 1. Build a configured network: a k=6 fat-tree (45 devices, 18
    #    destination equivalence classes).
    network = fattree_network(k=6)
    print(f"Concrete network: {network.graph.num_nodes()} nodes, "
          f"{network.graph.num_undirected_edges()} edges")

    # 2. Run the one-time phase once: enumerate the equivalence classes and
    #    encode every interface policy as a BDD.  The artifact is pickleable
    #    and is what the pipeline ships to each worker.
    artifact = EncodedNetwork.build(network)
    print(f"Encoded {len(artifact.classes)} equivalence classes "
          f"in {artifact.encode_seconds:.3f}s")

    # 3. Serial baseline: the deterministic fallback executor.
    serial = CompressionPipeline(artifact=artifact, executor="serial").run()
    print(f"Serial:   {serial.report.total_seconds:.3f}s wall clock")

    # 4. Parallel run: batches fan out over a process pool; each worker owns
    #    a private BddManager, so hash-consing stays process-local.
    parallel = CompressionPipeline(
        artifact=artifact, executor="process", workers=4
    ).run()
    print(f"Parallel: {parallel.report.total_seconds:.3f}s wall clock "
          f"({len(parallel.results)} classes over 4 workers)")

    # 5. The outputs are bit-identical: same partitions, same abstract sizes.
    assert serial.report.canonical_records() == parallel.report.canonical_records()
    print("Parallel output is bit-identical to serial.")

    # 6. The aggregated report is JSON-serialisable (this is the format the
    #    CLI writes with --output and CI uploads as an artifact).
    report = parallel.report
    print("Summary:")
    for line in report.summary_lines():
        print(f"  {line}")

    # The CLI equivalent of steps 2-4:
    #   python -m repro.pipeline --topo fattree --size 6 --workers 4 \
    #       --output report.json


if __name__ == "__main__":
    main()
