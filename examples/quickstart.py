#!/usr/bin/env python3
"""Quickstart: compress a BGP fat-tree and check a property on both networks.

Run with::

    python examples/quickstart.py
"""

from repro import Bonsai, fattree_network
from repro.abstraction import routable_equivalence_classes
from repro.analysis import check_reachability, compute_forwarding_table


def main() -> None:
    # 1. Build a configured network: a k=4 fat-tree running eBGP shortest
    #    path routing with per-destination prefix filters.
    network = fattree_network(k=4)
    print(f"Concrete network: {network.graph.num_nodes()} nodes, "
          f"{network.graph.num_undirected_edges()} edges, "
          f"{network.total_config_lines()} lines of configuration")

    # 2. Compress it with Bonsai, one destination equivalence class at a time.
    bonsai = Bonsai(network)
    classes = bonsai.equivalence_classes()
    print(f"Destination equivalence classes: {len(classes)}")

    result = bonsai.compress(classes[0], build_network=True)
    print(f"Compressed network for {classes[0].prefix}: "
          f"{result.abstract_nodes} nodes, {result.abstract_edges} edges "
          f"({result.node_compression_ratio():.1f}x node reduction, "
          f"{result.edge_compression_ratio():.1f}x edge reduction)")
    print("Abstract node membership:")
    for group in sorted(result.abstraction.groups(), key=lambda g: -len(g)):
        members = ", ".join(sorted(map(str, group))[:6])
        suffix = " ..." if len(group) > 6 else ""
        print(f"  [{len(group):>2} routers] {members}{suffix}")

    # 3. Analyse the small network instead of the big one.
    abstract = result.abstract_network
    abstract_ec = routable_equivalence_classes(abstract)[0]
    table = compute_forwarding_table(abstract, abstract_ec)
    source = result.abstraction.f("core0")
    outcome = check_reachability(table, source)
    print(f"Reachability from {source} (stands for every core switch): "
          f"{'reachable' if outcome.holds else 'UNREACHABLE'} "
          f"via {' -> '.join(map(str, outcome.witness))}")

    # Because the abstraction is CP-equivalent, the same answer holds for
    # every concrete core switch in the original 20-node network.
    concrete_table = compute_forwarding_table(network, classes[0])
    assert check_reachability(concrete_table, "core0").holds == outcome.holds
    print("Concrete network agrees - the compression preserved reachability.")


if __name__ == "__main__":
    main()
