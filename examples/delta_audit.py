#!/usr/bin/env python
"""Change audit of a fat-tree: does this route-map edit break anything?

The routine workload of a verifier that is cheap enough to run on every
commit: an operator tightens a route map (here: deny one top-of-rack's
/24 on an aggregation switch's export filter) and wants to know -- before
the change ships -- which properties break, where, and how much of the
expensive compression work can be reused.  `repro.delta` answers all
three: typed change sets applied as non-mutating views, incremental
re-verification seeded from the unchanged baseline (scratch-oracle
checked), and per-class abstraction revalidation that re-compresses only
the classes the change actually dirties.

Run with ``PYTHONPATH=src python examples/delta_audit.py``.
"""

from __future__ import annotations

from repro import DeltaSweep, fattree_network
from repro.config.prefix import Prefix
from repro.config.routemap import PrefixListEntry, RouteMapClause
from repro.delta import ChangeSet, PrefixListSet, RouteMapClauseInsert

network = fattree_network(k=4)
print(f"auditing {network.name}: {network.graph.num_nodes()} nodes, "
      f"{network.graph.num_undirected_edges()} links")

# The proposed changes: pod 0's aggregation switches stop exporting
# edge0_0's /24, one switch at a time.  Each deny clause is guarded by a
# prefix list, so it specialises away for every other destination class
# -- only the targeted class should ever re-compress.
target = Prefix.parse("10.0.0.0/24")


def tighten(device: str) -> ChangeSet:
    return ChangeSet(
        changes=(
            PrefixListSet(
                device=device,
                name="BLOCK-EDGE0",
                entries=(PrefixListEntry(prefix=target, action="permit"),),
            ),
            RouteMapClauseInsert(
                device=device,
                route_map="EXPORT-FILTER",
                clause=RouteMapClause(
                    sequence=5, action="deny", match_prefix_lists=("BLOCK-EDGE0",)
                ),
            ),
        ),
        name=f"tighten({device} ! {target})",
    )


script = [tighten("agg0_0"), tighten("agg0_1")]
for step in script:
    print(f"proposed change: {step.name}")

report = DeltaSweep(network, script=script, executor="serial").run()

print()
for line in report.summary_lines():
    print(line)

# ----------------------------------------------------------------------
# The audit verdict: what breaks, and where?
# ----------------------------------------------------------------------
print()
first = report.first_breaking_change()
broken = {prop: step for prop, step in first.items() if step is not None}
if not broken:
    print("the script breaks nothing: safe to ship")
for prop, step in sorted(broken.items()):
    print(f"{prop}: first broken by {step}")
for record in report.records:
    for outcome in record.steps:
        for prop, nodes in sorted(outcome.newly_failing.items()):
            print(
                f"  {outcome.step} BREAKS {prop} for {record.prefix} "
                f"at {', '.join(nodes)}"
            )

# ----------------------------------------------------------------------
# How much work the incremental path saved
# ----------------------------------------------------------------------
print()
counts = report.reuse_counts()
print(
    f"abstraction revalidation: {counts['reused']}/{counts['checked']} classes "
    "re-verified WITHOUT re-compression (signature unchanged); "
    f"{counts['recompressed']} dirty classes re-compressed"
)
speedup = report.incremental_speedup
if speedup is not None:
    print(f"incremental re-verify vs full rebuild: {speedup:.2f}x")

assert report.ok(), "incremental divergence or abstract disagreement!"
