#!/usr/bin/env python3
"""Differential batch verification: the soundness theorem, executably.

The point of control-plane compression is answering verification queries
on the *small* network while guaranteeing the same verdicts as the big
one.  This example runs the full property catalogue -- reachability,
all-paths reachability, black-hole freedom, routing-loop freedom, bounded
path length, waypointing and multipath consistency -- per destination
equivalence class on a fat-tree, on both the concrete and compressed
networks, and shows that every verdict matches.  It then breaks the
network with a bad ACL and shows both sides reporting the same violation,
with the abstract counterexample lifted back to concrete device names.

Run with::

    PYTHONPATH=src python examples/batch_verification.py
"""

from repro import fattree_network
from repro.analysis import BatchVerifier, PropertySuite
from repro.config import parse_network

BROKEN = """
device origin
  network 10.0.1.0/24
  bgp-neighbor left export OUT
  bgp-neighbor right export OUT
  route-map OUT 10 permit

device left
  bgp-neighbor origin import IN
  bgp-neighbor user import IN
  route-map IN 10 permit

device right
  bgp-neighbor origin import IN
  bgp-neighbor user import IN
  route-map IN 10 permit
  acl OOPS deny 10.0.1.0/24 default permit
  interface-acl origin OOPS

device user
  bgp-neighbor left import IN export OUT
  bgp-neighbor right import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

link origin left
link origin right
link user left
link user right
"""


def main() -> None:
    # 1. Verify the whole catalogue on a healthy k=4 fat-tree.  The
    #    BatchVerifier fans the per-class work out over the same executors
    #    as the compression pipeline (serial here; pass executor="process"
    #    and workers=N for the pool).
    network = fattree_network(4)
    report = BatchVerifier(network, executor="serial").run()
    print(f"== {network.name} ==")
    for line in report.summary_lines():
        print(f"  {line}")

    # 2. Verify a deliberately broken network: one ACL drops the traffic
    #    that one of the two redundant paths carries.  Both networks must
    #    report the same violations -- compression never masks a bug.
    broken = parse_network(BROKEN)
    suite = PropertySuite.from_names(
        ["reachability", "black-hole-freedom", "multipath-consistency"]
    )
    report = BatchVerifier(broken, suite=suite, executor="serial").run()
    print("\n== broken ACL network ==")
    print(f"  verdicts agree: {report.verdicts_agree()}")
    for record in report.records:
        for verdict in record.verdicts:
            if not verdict.concrete_failing:
                continue
            print(
                f"  {record.prefix} {verdict.property}: fails at "
                f"{verdict.concrete_failing} on BOTH networks"
            )
            for entry in verdict.counterexamples[:1]:
                witness = entry["abstract"]
                if witness is None:
                    continue
                print(f"    abstract witness: {witness['abstract']['detail']}")
                print(f"    lifted to devices: {witness['concrete_candidates']}")


if __name__ == "__main__":
    main()
