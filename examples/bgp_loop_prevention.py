#!/usr/bin/env python3
"""Walk through the paper's BGP loop-prevention gadget (Figures 2, 3 and 9).

The network is a two-level gadget: routers b1, b2, b3 sit between a and the
destination d, and each prefers routes learned from a (local preference
200) over the direct route from d.  Because a's own route travels through
one of the b routers, that router rejects a's advertisement (it would be a
loop) and is forced to route directly to d -- so routers with *identical*
configurations end up forwarding differently.

A naive abstraction that merges b1, b2, b3 into one node is unsound (it
would need a forwarding loop); Bonsai's BGP-effective abstraction splits
the merged node into two cases, bounded by the number of local-preference
values (Theorem 4.4).

Run with::

    python examples/bgp_loop_prevention.py
"""

from repro.abstraction import (
    check_bgp_effective,
    check_cp_equivalence,
    compute_abstraction,
)
from repro.routing import SetLocalPref, build_bgp_srp
from repro.srp import enumerate_solutions, solve
from repro.topology import Graph


def build_gadget():
    graph = Graph()
    for b in ("b1", "b2", "b3"):
        graph.add_undirected_edge("a", b)
        graph.add_undirected_edge(b, "d")
    imports = {(b, "a"): SetLocalPref(200) for b in ("b1", "b2", "b3")}
    return build_bgp_srp(graph, "d", import_policies=imports)


def main() -> None:
    srp = build_gadget()

    print("== One stable solution (Figure 2a) ==")
    solution = solve(srp)
    for node in ("a", "b1", "b2", "b3", "d"):
        label = solution.labeling[node]
        hops = ", ".join(sorted(map(str, solution.next_hops(node)))) or "-"
        path = ".".join(label.as_path) if label else "no route"
        print(f"  {node}: local-pref={label.local_pref if label else '-':>3}  "
              f"path={path:<12} forwards to {hops}")

    print("\n== All stable solutions (different message timings) ==")
    for index, other in enumerate(enumerate_solutions(srp), start=1):
        down = [b for b in ("b1", "b2", "b3") if other.next_hops(b) == {"d"}]
        print(f"  solution {index}: router forced downhill = {down[0]}")

    print("\n== Naive abstraction (Figure 2b): merge b1,b2,b3 into one node ==")
    naive = compute_abstraction(srp, bgp_case_split=False)
    report = check_cp_equivalence(srp, naive.abstraction)
    print(f"  {naive.num_abstract_nodes} abstract nodes; "
          f"CP-equivalent? {report.cp_equivalent}")
    for violation in report.violations[:2]:
        print(f"    violation: {violation}")

    print("\n== Bonsai's abstraction (Figure 2c / 3c) ==")
    sound = compute_abstraction(srp)
    print(f"  {sound.num_abstract_nodes} abstract nodes, "
          f"{sound.num_abstract_edges} abstract edges "
          f"(b-group split into {list(sound.split_counts.values())[0]} cases)")
    effective = check_bgp_effective(srp, sound.abstraction)
    equivalent = check_cp_equivalence(srp, sound.abstraction)
    print(f"  BGP-effective conditions: {effective.summary()}")
    print(f"  CP-equivalent? {equivalent.cp_equivalent}")


if __name__ == "__main__":
    main()
