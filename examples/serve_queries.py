#!/usr/bin/env python3
"""The warm-baseline verification service, end to end.

This example does what a network operations pipeline would: build a
fat-tree's warm baseline once (encode + solve + compress every
destination class), persist it to an artifact store, start the
``repro.serve`` HTTP service off the stored artifact on an ephemeral
port, and fire a burst of concurrent queries at it --

* per-class and whole-network ``/verify`` queries (answered off the
  stored forwarding tables and compressions: no re-solve),
* a ``/delta`` what-if change script (validated with zero baseline
  re-solves),
* a ``/k-resilience`` probe,

then prints the service's per-kind latency percentiles.  Exits non-zero
unless every response is 2xx with ``ok: true``.

Run with::

    PYTHONPATH=src python examples/serve_queries.py
"""

import json
import sys
import tempfile
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro import fattree_network
from repro.api import Session
from repro.serve import VerificationService, create_server


def post(url, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    network = fattree_network(k=4)

    with tempfile.TemporaryDirectory() as store_root:
        # Pay the baseline cost once, persist, then reload through the
        # verified store path -- exactly what a long-running service does
        # across restarts.
        print("building + storing the warm baseline...")
        Session(network, store=store_root)
        session = Session.load(store_root, network=fattree_network(k=4))
        print(
            f"  {len(session.classes)} destination classes, "
            f"fingerprint {session.fingerprint[:12]}..."
        )

        service = VerificationService(session)
        server = create_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        print(f"  serving on {base}")

        failures = []

        def expect_ok(label, status, answer):
            if status != 200 or answer.get("ok") is not True:
                failures.append(f"{label}: status={status} ok={answer.get('ok')}")

        # Health first.
        expect_ok("health", *get(f"{base}/health"))

        # A concurrent burst: every per-class query plus whole-network
        # sweeps, eight clients at once.  Identical in-flight queries are
        # coalesced server-side; repeated ones hit the answer cache.
        queries = [{"prefix": str(ec.prefix)} for ec in session.classes]
        queries += [{}] * 4
        queries *= 4

        def one_verify(payload):
            expect_ok(f"verify {payload or 'all'}", *post(f"{base}/verify", payload))

        print(f"firing {len(queries)} concurrent verify queries...")
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(one_verify, queries))

        # A what-if change script, validated against the stored baseline.
        device = sorted(str(d) for d in network.devices)[0]
        peer = str(next(iter(network.graph.successors(device))))
        script = [
            {
                "name": "prefer-peer",
                "changes": [
                    {
                        "kind": "local-pref-override",
                        "device": device,
                        "peer": peer,
                        "local_pref": 300,
                    }
                ],
            }
        ]
        status, answer = post(f"{base}/delta", {"script": script})
        expect_ok("delta", status, answer)
        if status == 200:
            print(
                f"delta: {answer['num_classes']} classes validated against "
                f"baseline {str(answer['baseline_fingerprint'])[:12]}..."
            )

        status, answer = post(f"{base}/k-resilience", {"max_k": 1, "sample": 8})
        expect_ok("k-resilience", status, answer)
        if status == 200:
            print(f"k-resilience: breaking_k={answer.get('breaking_k')}")

        # Latency accounting straight from the service.
        status, stats = get(f"{base}/stats")
        expect_ok("stats", status, stats)
        print("latency percentiles per query kind:")
        for kind, summary in sorted(stats.get("queries", {}).items()):
            print(
                f"  {kind:12s} n={summary['count']:4d} "
                f"(coalesced {summary['coalesced']}) "
                f"p50 {summary['p50_ms']:7.2f}ms  p95 {summary['p95_ms']:7.2f}ms"
            )

        server.shutdown()
        server.server_close()

        if failures:
            for failure in failures:
                print(f"FAILED: {failure}", file=sys.stderr)
            return 1
        print("every query answered 200 ok")
        return 0


if __name__ == "__main__":
    sys.exit(main())
