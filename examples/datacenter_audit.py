#!/usr/bin/env python3
"""Audit a multi-cluster datacenter: roles, compression and analysis speedup.

This example mirrors the paper's real-network evaluation (§8) on the
synthetic datacenter substitute: it reports how many distinct device roles
the configurations contain, compresses a few destination equivalence
classes, and compares the cost of an all-pairs reachability check on the
concrete versus the compressed network.

Run with::

    python examples/datacenter_audit.py           # small instance, fast
    python examples/datacenter_audit.py --paper   # 197-device instance
"""

import sys
import time

from repro import Bonsai, datacenter_network
from repro.analysis import verify_all_pairs_reachability, verify_with_abstraction
from repro.netgen import DATACENTER_PAPER_SCALE, DATACENTER_SMALL_SCALE


def main(paper_scale: bool) -> None:
    params = DATACENTER_PAPER_SCALE if paper_scale else DATACENTER_SMALL_SCALE
    network = datacenter_network(params)
    stats = network.stats()
    print(f"Datacenter: {stats['nodes']} devices, {stats['edges']} links, "
          f"~{stats['config_lines']} lines of configuration, "
          f"{stats['equivalence_classes']} destination classes")

    bonsai = Bonsai(network)
    sample = bonsai.equivalence_classes()[0]
    roles = bonsai.unique_roles(sample.prefix)
    print(f"Distinct device roles (per-interface policy BDDs, unused tags ignored): {roles}")

    limit = 3 if paper_scale else None
    start = time.perf_counter()
    results = bonsai.compress_all(limit=limit)
    elapsed = time.perf_counter() - start
    summary = bonsai.summarize(results)
    row = summary.as_row()
    print(f"Compression over {len(results)} classes "
          f"(BDD build {summary.bdd_seconds:.2f}s, total {elapsed:.2f}s):")
    print(f"  mean abstract size: {row['abs_nodes']} nodes / {row['abs_edges']} edges "
          f"=> {row['node_ratio']}x node and {row['edge_ratio']}x edge reduction")

    # All-pairs reachability, with and without compression.  On the paper
    # scale instance restrict to a few classes so the example stays quick.
    classes = bonsai.equivalence_classes()[: (2 if paper_scale else None)]
    concrete = verify_all_pairs_reachability(network, classes=classes)
    abstract = verify_with_abstraction(network, classes=classes)
    print(f"All-pairs reachability over {concrete.classes_checked} classes:")
    print(f"  concrete  : {concrete.seconds:6.2f}s  "
          f"({concrete.pairs_checked} pairs, {concrete.unreachable_pairs} unreachable)")
    print(f"  compressed: {abstract.seconds:6.2f}s  "
          f"({abstract.pairs_checked} pairs, {abstract.unreachable_pairs} unreachable)")
    if abstract.seconds > 0:
        print(f"  speedup   : {concrete.seconds / max(abstract.seconds, 1e-9):.1f}x "
              f"(including compression time)")


if __name__ == "__main__":
    main(paper_scale="--paper" in sys.argv)
