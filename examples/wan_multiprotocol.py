#!/usr/bin/env python3
"""Compress a WAN that mixes eBGP, iBGP, OSPF and static routes (§6, §8).

The synthetic WAN has a full-mesh core running OSPF and iBGP, per-region
hub routers speaking eBGP towards the core with region-specific export
filters, and access routers (some with static default routes) behind each
hub.  The example compresses a region's destination class and shows that
routers of the same role collapse together while protocol and policy
differences keep roles apart.

Run with::

    python examples/wan_multiprotocol.py           # small instance
    python examples/wan_multiprotocol.py --paper   # 1086-device instance
"""

import sys

from repro import Bonsai, wan_network
from repro.netgen import WAN_PAPER_SCALE, WAN_SMALL_SCALE


def main(paper_scale: bool) -> None:
    params = WAN_PAPER_SCALE if paper_scale else WAN_SMALL_SCALE
    network = wan_network(params)
    stats = network.stats()
    protocols = {
        "ospf links": sum(len(d.ospf_links) for d in network.devices.values()) // 2,
        "ibgp sessions": sum(
            1 for d in network.devices.values() for s in d.bgp_neighbors.values() if s.ibgp
        ) // 2,
        "static routes": sum(len(d.static_routes) for d in network.devices.values()),
    }
    print(f"WAN: {stats['nodes']} devices, {stats['edges']} links "
          f"({', '.join(f'{v} {k}' for k, v in protocols.items())})")

    bonsai = Bonsai(network)
    classes = bonsai.equivalence_classes()
    region_class = next(ec for ec in classes if next(iter(ec.origins)).startswith("hub"))
    print(f"Compressing the destination class {region_class.prefix} "
          f"(originated by {sorted(map(str, region_class.origins))[0]})")

    result = bonsai.compress(region_class, build_network=True)
    print(f"  concrete: {stats['nodes']} nodes -> abstract: {result.abstract_nodes} nodes "
          f"({result.node_compression_ratio():.1f}x), "
          f"{result.abstract_edges} edges ({result.edge_compression_ratio():.1f}x)")

    print("  largest abstract groups:")
    for group in sorted(result.abstraction.groups(), key=len, reverse=True)[:4]:
        members = sorted(map(str, group))
        print(f"    {len(group):>4} routers, e.g. {', '.join(members[:4])}")

    roles = bonsai.unique_roles(region_class.prefix)
    print(f"  distinct device roles for this destination: {roles}")
    print("The compressed configurations can now be fed to any control-plane "
          "analysis in place of the full WAN.")


if __name__ == "__main__":
    main(paper_scale="--paper" in sys.argv)
