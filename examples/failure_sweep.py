#!/usr/bin/env python
"""Failure audit of a fat-tree: which properties survive any single link cut?

This is the workload the paper's compression cannot answer on the abstract
network alone -- link failures are the stated limitation -- and exactly
what `repro.failures` adds: sweep every single-link failure scenario,
re-solve the failed control plane incrementally from the intact baseline
(cross-checked against a scratch solve), and flag per scenario whether the
Bonsai abstraction can still represent the failure.

Run with ``PYTHONPATH=src python examples/failure_sweep.py``.
"""

from __future__ import annotations

from repro import FailureSweep, fattree_network
from repro.failures import points_of_interest

network = fattree_network(k=4)
print(f"auditing {network.name}: {network.graph.num_nodes()} nodes, "
      f"{network.graph.num_undirected_edges()} links")

# Named single points of interest are prepended to the exhaustive k=1
# enumeration, so the report can call out the hub and the busiest link.
interesting = points_of_interest(network)
print(f"points of interest: {', '.join(sorted(interesting))}")

sweep = FailureSweep(network, k=1, executor="serial")
report = sweep.run()

print()
for line in report.summary_lines():
    print(line)

# ----------------------------------------------------------------------
# The audit verdict: which properties are failure-resilient?
# ----------------------------------------------------------------------
print()
first = report.first_failing_scenario()
resilient = [prop for prop in report.properties if first[prop] is None]
fragile = {prop: first[prop] for prop in report.properties if first[prop]}
print(f"resilient to every single link failure: {', '.join(resilient) or '-'}")
for prop, scenario in fragile.items():
    print(f"fragile: {prop} first broken by {scenario}")

# ----------------------------------------------------------------------
# Where the abstraction stops being trustworthy
# ----------------------------------------------------------------------
counts = report.soundness_counts()
print()
print(
    f"abstraction soundness: {counts['sound']}/{counts['checked']} scenarios "
    "remain representable on the baseline abstraction"
)
print(
    f"(the other {counts['recompressed']} were re-compressed per scenario; "
    f"{counts['disagreed']} verdict disagreements found)"
)
speedup = report.incremental_speedup
if speedup is not None:
    print(f"incremental re-solve speedup over scratch: {speedup:.2f}x")

assert report.ok(), "incremental divergence or soundness disagreement!"
