"""Legacy setup shim.

The environment this repository targets has no network access and an old
setuptools without the ``wheel`` package, so PEP 517 editable installs fail
with "invalid command 'bdist_wheel'".  Keeping a ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
